#include "support/rng.hpp"

#include <cmath>
#include <numbers>

#include "support/check.hpp"

namespace mfcp {

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : state_) {
    s = sm.next();
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 significant bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method: unbiased, no modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  // Box–Muller without caching the second deviate: deterministic stream
  // consumption (exactly two u64 per call) keeps split() reproducible.
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;  // avoid log(0)
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::split() noexcept {
  Rng child(0);
  // Derive the child state from fresh parent output so parent and child
  // streams diverge immediately.
  SplitMix64 sm(next_u64());
  for (auto& s : child.state_) {
    s = sm.next();
  }
  return child;
}

std::vector<Rng> Rng::split_n(std::size_t n) {
  std::vector<Rng> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(split());
  }
  return out;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) {
    idx[i] = i;
  }
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace mfcp
