#include "support/stopwatch.hpp"

namespace mfcp {

double Stopwatch::seconds() const noexcept {
  const auto elapsed = Clock::now() - start_;
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace mfcp
