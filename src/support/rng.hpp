// Deterministic, splittable random number generation.
//
// Experiments in this repo must be reproducible bit-for-bit under a fixed
// seed, including when the perturbation loop of Algorithm 2 runs on a thread
// pool. We therefore use xoshiro256** seeded through SplitMix64 and derive
// independent per-worker streams with Rng::split(), instead of sharing one
// std::mt19937 behind a mutex.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mfcp {

/// SplitMix64: used to expand a single 64-bit seed into generator state and
/// to derive child seeds. Passes through zero-state pathologies of xoshiro.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256** generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator, so it also works with <random>
/// distributions, but the members below are preferred: they are stable
/// across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double uniform() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box–Muller (stateless variant: two uniforms per
  /// call, no cached spare, to keep split streams independent of call
  /// parity).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Bernoulli with success probability p in [0, 1].
  bool bernoulli(double p) noexcept;

  /// Derives an independent child generator. Children of distinct split
  /// calls (and the parent after the call) do not share state.
  Rng split() noexcept;

  /// Returns `n` independent child generators (for per-thread streams).
  std::vector<Rng> split_n(std::size_t n);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace mfcp
