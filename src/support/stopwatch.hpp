// Wall-clock timing for benchmarks and experiment harnesses.
#pragma once

#include <chrono>

namespace mfcp {

/// Monotonic stopwatch. Started on construction; restart with reset().
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept;

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mfcp
