#include "support/table.hpp"

#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace mfcp {

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MFCP_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  MFCP_CHECK(row.size() == header_.size(),
             "row width does not match header width");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };

  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c], '-');
    if (c + 1 < header_.size()) {
      os << "  ";
    }
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) {
        os << ',';
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  MFCP_CHECK(f.good(), "cannot open CSV output file: " + path);
  f << to_csv();
}

std::string Table::cell(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

}  // namespace mfcp
