// Plain-text table rendering and CSV export for the experiment harnesses.
//
// Every bench binary prints its results as an aligned table that mirrors the
// corresponding table/figure of the paper, and optionally dumps the same
// rows to CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace mfcp {

/// Column-aligned text table. Cells are strings; numeric callers format via
/// Table::cell helpers or format_mean_std().
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row. Must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }

  /// Renders the table with a header rule, e.g.
  ///   Method   Regret          Reliability
  ///   -------  --------------  -------------
  ///   TSM      2.014 ± 0.035   0.832 ± 0.003
  [[nodiscard]] std::string to_string() const;

  /// Comma-separated rendering (header + rows). Cells containing commas or
  /// quotes are quoted per RFC 4180.
  [[nodiscard]] std::string to_csv() const;

  /// Writes to_csv() to `path`, replacing any existing file.
  void write_csv(const std::string& path) const;

  /// Formats a double with fixed precision (helper for row building).
  static std::string cell(double value, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mfcp
