#include "support/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mfcp {

namespace {

int initial_level() {
  const char* env = std::getenv("MFCP_LOG_LEVEL");
  if (env == nullptr) {
    return static_cast<int>(LogLevel::kWarn);
  }
  return static_cast<int>(parse_log_level(env, LogLevel::kWarn));
}

std::atomic<int> g_level{initial_level()};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

LogLevel parse_log_level(const std::string& text, LogLevel fallback) {
  std::string lower(text.size(), '\0');
  std::transform(text.begin(), text.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return fallback;
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  const auto now = std::chrono::system_clock::now();
  const auto secs =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%lld.%03lld %s] %s\n",
               static_cast<long long>(secs / 1000),
               static_cast<long long>(secs % 1000), level_name(level),
               message.c_str());
}

}  // namespace mfcp
