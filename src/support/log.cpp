#include "support/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace mfcp {

namespace {

int initial_level() {
  const char* env = std::getenv("MFCP_LOG_LEVEL");
  if (env == nullptr) {
    return static_cast<int>(LogLevel::kWarn);
  }
  return static_cast<int>(parse_log_level(env, LogLevel::kWarn));
}

std::atomic<int> g_level{initial_level()};

/// Monotonic origin for log timestamps: steady_clock at first use, so
/// lines read as seconds-since-process-start and never jump with NTP.
std::chrono::steady_clock::time_point log_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Compact per-thread id: threads number themselves 0, 1, 2, ... in first-
/// log order, which is far easier to eyeball than std::thread::id hashes.
int thread_ordinal() {
  static std::atomic<int> next{0};
  thread_local const int ordinal = next.fetch_add(1);
  return ordinal;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

LogLevel parse_log_level(const std::string& text, LogLevel fallback) {
  // Tolerate surrounding whitespace ("info\n" from a config file), but
  // nothing fancier — "1.5" or "warns" still falls back.
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  auto begin = text.begin();
  auto end = text.end();
  while (begin != end && is_space(static_cast<unsigned char>(*begin))) {
    ++begin;
  }
  while (end != begin && is_space(static_cast<unsigned char>(*(end - 1)))) {
    --end;
  }
  std::string lower(static_cast<std::size_t>(end - begin), '\0');
  std::transform(begin, end, lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return fallback;
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  const auto elapsed = std::chrono::steady_clock::now() - log_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  // One formatted buffer, one write: concurrent loggers may reorder whole
  // lines but can never interleave within one (no mutex needed — POSIX
  // fwrite is itself atomic per call on a line-buffered stderr).
  char prefix[64];
  const int n = std::snprintf(prefix, sizeof(prefix), "[%7lld.%03lld T%d %s] ",
                              static_cast<long long>(ms / 1000),
                              static_cast<long long>(ms % 1000),
                              thread_ordinal(), level_name(level));
  std::string line;
  line.reserve(static_cast<std::size_t>(n) + message.size() + 1);
  line.append(prefix, static_cast<std::size_t>(n));
  line.append(message);
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace mfcp
