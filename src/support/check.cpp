#include "support/check.hpp"

#include <sstream>

namespace mfcp {

namespace {
std::string format_message(std::string_view expr, std::string_view msg,
                           const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " in " << loc.function_name()
     << ": contract violated: (" << expr << ")";
  if (!msg.empty()) {
    os << " — " << msg;
  }
  return os.str();
}
}  // namespace

ContractError::ContractError(std::string_view expr, std::string_view msg,
                             std::source_location loc)
    : std::logic_error(format_message(expr, msg, loc)), expr_(expr) {}

namespace detail {
void contract_failure(std::string_view expr, std::string_view msg,
                      std::source_location loc) {
  throw ContractError(expr, msg, loc);
}
}  // namespace detail

}  // namespace mfcp
