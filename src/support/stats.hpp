// Streaming and batch statistics used when reporting experiment results as
// mean ± std over replications (the paper reports every table cell this way).
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace mfcp {

/// Welford online accumulator: numerically stable mean/variance without
/// storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator (parallel reduction support).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Sample variance (n-1 denominator). Zero for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a sample span. Requires non-empty input.
double mean_of(std::span<const double> xs);

/// Sample standard deviation (n-1). Zero for fewer than two samples.
double stddev_of(std::span<const double> xs);

/// Formats "m ± s" with the given precision, e.g. "0.894 ± 0.035".
std::string format_mean_std(double mean, double std, int precision = 3);

}  // namespace mfcp
