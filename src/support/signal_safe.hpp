// Async-signal-safe building blocks for the crash-dump path.
//
// Everything here is callable from a signal handler: no allocation, no
// locks, no stdio, no errno-preserving surprises — only direct syscalls
// (open/write/close) and pure buffer arithmetic. POSIX guarantees
// open(2)/write(2)/close(2) are async-signal-safe; the formatters below
// touch caller-provided stack buffers only.
//
// These helpers exist so obs/flight.cpp's SIGSEGV/SIGABRT/SIGBUS handler
// can serialize the flight-recorder rings without calling anything that
// might itself deadlock on the lock the crashing thread holds.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mfcp::support {

/// Renders `value` in decimal into `buf` (no NUL). Returns the number of
/// bytes written, 0 when `cap` is too small for the full number (nothing
/// partial is ever emitted).
std::size_t format_u64_decimal(char* buf, std::size_t cap,
                               std::uint64_t value) noexcept;

/// Signed variant: renders `value` (including INT64_MIN, whose
/// magnitude does not fit in int64_t) with a leading '-' when negative.
/// Returns bytes written, 0 when `cap` cannot hold the full rendering.
std::size_t format_i64_decimal(char* buf, std::size_t cap,
                               std::int64_t value) noexcept;

/// Renders `value` as exactly 16 lower-case hex digits (no NUL, no "0x").
/// Returns 16, or 0 when `cap` < 16.
std::size_t format_u64_hex(char* buf, std::size_t cap,
                           std::uint64_t value) noexcept;

/// Appends the NUL-terminated string `text` at `buf + pos` without
/// overflowing `cap`. Returns the new position (== old position when the
/// string does not fit; never partial).
std::size_t append_literal(char* buf, std::size_t cap, std::size_t pos,
                           const char* text) noexcept;

/// write(2) until every byte is out, retrying EINTR. Returns false on any
/// other error or on fd < 0.
bool write_all_fd(int fd, const void* data, std::size_t len) noexcept;

/// open(2) with O_WRONLY|O_CREAT|O_TRUNC, mode 0644. Returns -1 on error.
/// Safe to call from a signal handler.
int open_trunc_fd(const char* path) noexcept;

/// close(2), ignoring errors. Safe in a signal handler; no-op on fd < 0.
void close_fd(int fd) noexcept;

}  // namespace mfcp::support
