// High-level linear solve entry points.
#pragma once

#include "linalg/matrix.hpp"

namespace mfcp {

/// Solves A x = b via LU with partial pivoting. b may be n x k (multi-RHS).
Matrix solve_linear(const Matrix& a, const Matrix& b);

/// Solves the symmetric saddle-point system
///   [ H  D^T ] [x]   [b1]
///   [ D  0   ] [y] = [b2]
/// that arises from equality-constrained stationarity (the reduced KKT
/// system of paper Eq. 15 when box multipliers vanish at interior points).
/// H is h x h, D is e x h; b1 is h x k, b2 is e x k. Returns the stacked
/// (h+e) x k solution [x; y].
Matrix solve_saddle_point(const Matrix& h, const Matrix& d, const Matrix& b1,
                          const Matrix& b2);

/// 1-norm condition estimate via the factored determinant fallback:
/// returns ||A||_1 * ||A^{-1}||_1 computed exactly (dense inverse). Only
/// intended for diagnostics on the small KKT systems.
double condition_number_1(const Matrix& a);

}  // namespace mfcp
