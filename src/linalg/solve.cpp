#include "linalg/solve.hpp"

#include <cmath>

#include "linalg/lu.hpp"
#include "support/check.hpp"

namespace mfcp {

Matrix solve_linear(const Matrix& a, const Matrix& b) {
  LuFactorization lu(a);
  if (b.cols() == 1) {
    return lu.solve(b);
  }
  return lu.solve_multi(b);
}

Matrix solve_saddle_point(const Matrix& h, const Matrix& d, const Matrix& b1,
                          const Matrix& b2) {
  const std::size_t nh = h.rows();
  const std::size_t ne = d.rows();
  MFCP_CHECK(h.cols() == nh, "H must be square");
  MFCP_CHECK(d.cols() == nh, "D column count must match H");
  MFCP_CHECK(b1.rows() == nh && b2.rows() == ne, "rhs shape mismatch");
  MFCP_CHECK(b1.cols() == b2.cols(), "rhs column counts must match");

  // Assemble the full (nh+ne) square system and solve with one LU: the KKT
  // matrices in this codebase are small (O(MN + N)), so assembling densely
  // is cheaper and simpler than a Schur-complement path.
  const std::size_t n = nh + ne;
  Matrix k(n, n, 0.0);
  for (std::size_t i = 0; i < nh; ++i) {
    for (std::size_t j = 0; j < nh; ++j) {
      k(i, j) = h(i, j);
    }
  }
  for (std::size_t i = 0; i < ne; ++i) {
    for (std::size_t j = 0; j < nh; ++j) {
      k(nh + i, j) = d(i, j);
      k(j, nh + i) = d(i, j);
    }
  }
  Matrix rhs(n, b1.cols(), 0.0);
  for (std::size_t c = 0; c < b1.cols(); ++c) {
    for (std::size_t i = 0; i < nh; ++i) {
      rhs(i, c) = b1(i, c);
    }
    for (std::size_t i = 0; i < ne; ++i) {
      rhs(nh + i, c) = b2(i, c);
    }
  }
  return solve_linear(k, rhs);
}

namespace {
double norm1(const Matrix& a) {
  double best = 0.0;
  for (std::size_t c = 0; c < a.cols(); ++c) {
    double col = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) {
      col += std::abs(a(r, c));
    }
    best = std::max(best, col);
  }
  return best;
}
}  // namespace

double condition_number_1(const Matrix& a) {
  MFCP_CHECK(a.rows() == a.cols(), "condition number of square matrix only");
  LuFactorization lu(a);
  const Matrix inv = lu.solve_multi(Matrix::identity(a.rows()));
  return norm1(a) * norm1(inv);
}

}  // namespace mfcp
