// LU factorization with partial pivoting.
//
// Used to solve the KKT sensitivity system (paper Eq. 15): factor once,
// then back-substitute for every column of dX*/dT̂ and dX*/dÂ (multi-RHS).
#pragma once

#include <stdexcept>
#include <vector>

#include "linalg/matrix.hpp"

namespace mfcp {

/// Compact LU factorization P*A = L*U of a square matrix.
class LuFactorization {
 public:
  /// Factors `a` (n x n). Throws SingularMatrixError if a zero (or
  /// numerically negligible) pivot is encountered.
  explicit LuFactorization(Matrix a);

  [[nodiscard]] std::size_t dim() const noexcept { return lu_.rows(); }

  /// Solves A x = b for a single right-hand side (n x 1).
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Solves A X = B column-by-column (B is n x k).
  [[nodiscard]] Matrix solve_multi(const Matrix& b) const;

  /// det(A) from the product of pivots and the permutation sign.
  [[nodiscard]] double determinant() const noexcept;

  /// +1 or -1 depending on the permutation parity.
  [[nodiscard]] int permutation_sign() const noexcept { return sign_; }

 private:
  Matrix lu_;                     // L (unit diagonal, below) and U (diag+above)
  std::vector<std::size_t> piv_;  // row permutation
  int sign_ = 1;
};

/// Thrown when a factorization meets a numerically singular matrix.
class SingularMatrixError : public std::runtime_error {
 public:
  explicit SingularMatrixError(std::size_t pivot_index);
};

}  // namespace mfcp
