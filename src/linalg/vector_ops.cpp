#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mfcp {

double dot(const Matrix& a, const Matrix& b) {
  MFCP_CHECK(a.size() == b.size(), "dot: element count mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double norm2(const Matrix& m) { return std::sqrt(dot(m, m)); }

double norm_inf(const Matrix& m) {
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    acc = std::max(acc, std::abs(m[i]));
  }
  return acc;
}

double sum(const Matrix& m) {
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    acc += m[i];
  }
  return acc;
}

double max_element(const Matrix& m) {
  MFCP_CHECK(!m.empty(), "max of empty matrix");
  double acc = m[0];
  for (std::size_t i = 1; i < m.size(); ++i) {
    acc = std::max(acc, m[i]);
  }
  return acc;
}

double log_sum_exp(std::span<const double> xs, double beta) {
  MFCP_CHECK(!xs.empty(), "log_sum_exp of empty span");
  MFCP_CHECK(beta > 0.0, "log_sum_exp requires beta > 0");
  const double m = *std::max_element(xs.begin(), xs.end());
  double acc = 0.0;
  for (double x : xs) {
    acc += std::exp(beta * (x - m));
  }
  return m + std::log(acc) / beta;
}

void softmax_inplace(std::span<double> xs) { softmax_inplace(xs, 1.0); }

void softmax_inplace(std::span<double> xs, double beta) {
  MFCP_CHECK(!xs.empty(), "softmax of empty span");
  const double m = *std::max_element(xs.begin(), xs.end());
  double total = 0.0;
  for (double& x : xs) {
    x = std::exp(beta * (x - m));
    total += x;
  }
  for (double& x : xs) {
    x /= total;
  }
}

void softmax_columns_inplace(Matrix& m) {
  MFCP_CHECK(m.rows() > 0 && m.cols() > 0, "softmax of empty matrix");
  for (std::size_t c = 0; c < m.cols(); ++c) {
    double mx = m(0, c);
    for (std::size_t r = 1; r < m.rows(); ++r) {
      mx = std::max(mx, m(r, c));
    }
    double total = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      m(r, c) = std::exp(m(r, c) - mx);
      total += m(r, c);
    }
    for (std::size_t r = 0; r < m.rows(); ++r) {
      m(r, c) /= total;
    }
  }
}

void axpy(double alpha, const Matrix& x, Matrix& y) {
  MFCP_CHECK(x.size() == y.size(), "axpy: element count mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

}  // namespace mfcp
