// Householder QR factorization and least-squares solving.
//
// Used by the closed-form ridge-regression predictors (mfcp/linear_model):
// the normal equations of small feature matrices are solved stably via QR
// rather than Cholesky of X^T X.
#pragma once

#include "linalg/matrix.hpp"

namespace mfcp {

/// Householder QR of an m x n matrix with m >= n: A = Q R with Q m x n
/// (thin, orthonormal columns) and R n x n upper triangular.
class QrFactorization {
 public:
  explicit QrFactorization(Matrix a);

  [[nodiscard]] std::size_t rows() const noexcept { return m_; }
  [[nodiscard]] std::size_t cols() const noexcept { return n_; }

  /// Thin Q (m x n), materialized on demand.
  [[nodiscard]] Matrix q() const;

  /// R (n x n upper triangular).
  [[nodiscard]] Matrix r() const;

  /// Least-squares solution argmin_x ||A x - b||_2 for b of length m.
  [[nodiscard]] Matrix solve_least_squares(const Matrix& b) const;

  /// True if R has a numerically negligible diagonal entry (rank
  /// deficiency); solve_least_squares would divide by ~0.
  [[nodiscard]] bool rank_deficient(double tol = 1e-12) const;

 private:
  /// Applies Q^T to a length-m vector in place.
  void apply_qt(Matrix& v) const;

  std::size_t m_ = 0;
  std::size_t n_ = 0;
  Matrix qr_;   // Householder vectors below the diagonal, R on/above
  Matrix tau_;  // Householder coefficients (n x 1)
};

/// Ridge regression: solves argmin_w ||X w - y||^2 + lambda ||w||^2 via
/// the augmented least-squares system [X; sqrt(lambda) I] w = [y; 0].
/// X is (samples x features), y is (samples x 1); returns (features x 1).
Matrix ridge_regression(const Matrix& x, const Matrix& y, double lambda);

}  // namespace mfcp
