// Dense row-major matrix of doubles — the numeric workhorse for the
// autograd engine, the matching solvers, and the KKT sensitivity system.
//
// Kept deliberately simple: value semantics, bounds-checked access in debug
// builds, and free functions for algebra (see blas.hpp, lu.hpp, solve.hpp).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace mfcp {

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// From nested initializer list: Matrix{{1,2},{3,4}}. All rows must have
  /// equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix zeros(std::size_t rows, std::size_t cols);
  static Matrix ones(std::size_t rows, std::size_t cols);
  static Matrix identity(std::size_t n);

  /// Column vector (n x 1) from values.
  static Matrix column(std::span<const double> values);

  /// Row vector (1 x n) from values.
  static Matrix row(std::span<const double> values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// True when this is an n x 1 or 1 x n matrix (or empty).
  [[nodiscard]] bool is_vector() const noexcept;

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Flat element access in row-major order.
  double& operator[](std::size_t i);
  double operator[](std::size_t i) const;

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  [[nodiscard]] std::span<double> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const double> flat() const noexcept {
    return data_;
  }

  /// Row r as a span (contiguous in row-major layout).
  [[nodiscard]] std::span<double> row_span(std::size_t r);
  [[nodiscard]] std::span<const double> row_span(std::size_t r) const;

  void fill(double value) noexcept;

  /// Reshape preserving element count and row-major order.
  [[nodiscard]] Matrix reshaped(std::size_t rows, std::size_t cols) const;

  [[nodiscard]] Matrix transposed() const;

  /// Extracts the c-th column as an n x 1 matrix.
  [[nodiscard]] Matrix col_vector(std::size_t c) const;

  /// Writes an n x 1 (or 1 x n) vector into column c.
  void set_col(std::size_t c, const Matrix& v);

  /// Element-wise in-place operations with shape checks.
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;

  [[nodiscard]] bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Human-readable rendering (testing/debugging aid).
  [[nodiscard]] std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix m, double s);
Matrix operator*(double s, Matrix m);

/// Element-wise (Hadamard) product.
Matrix hadamard(const Matrix& a, const Matrix& b);

/// True if all elements differ by at most `tol`.
bool approx_equal(const Matrix& a, const Matrix& b, double tol = 1e-9);

}  // namespace mfcp
