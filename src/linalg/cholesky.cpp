#include "linalg/cholesky.hpp"

#include <cmath>
#include <string>

#include "support/check.hpp"

namespace mfcp {

NotPositiveDefiniteError::NotPositiveDefiniteError(std::size_t pivot_index)
    : std::runtime_error("matrix is not positive definite at pivot " +
                         std::to_string(pivot_index)) {}

CholeskyFactorization::CholeskyFactorization(const Matrix& a) {
  MFCP_CHECK(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  l_ = Matrix::zeros(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        acc -= l_(i, k) * l_(j, k);
      }
      if (i == j) {
        if (acc <= 0.0 || !std::isfinite(acc)) {
          throw NotPositiveDefiniteError(i);
        }
        l_(i, i) = std::sqrt(acc);
      } else {
        l_(i, j) = acc / l_(j, j);
      }
    }
  }
}

Matrix CholeskyFactorization::solve(const Matrix& b) const {
  const std::size_t n = dim();
  MFCP_CHECK(b.size() == n, "rhs length must match matrix dimension");
  Matrix y(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) {
      acc -= l_(i, k) * y[k];
    }
    y[i] = acc / l_(i, i);
  }
  Matrix x(n, 1);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) {
      acc -= l_(k, ii) * x[k];
    }
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

bool is_positive_definite(const Matrix& a) {
  if (a.rows() != a.cols() || a.empty()) {
    return false;
  }
  try {
    CholeskyFactorization chol(a);
    return true;
  } catch (const NotPositiveDefiniteError&) {
    return false;
  }
}

}  // namespace mfcp
