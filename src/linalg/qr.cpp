#include "linalg/qr.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mfcp {

QrFactorization::QrFactorization(Matrix a)
    : m_(a.rows()), n_(a.cols()), qr_(std::move(a)), tau_(n_, 1, 0.0) {
  MFCP_CHECK(m_ >= n_ && n_ > 0, "QR requires m >= n >= 1");

  for (std::size_t k = 0; k < n_; ++k) {
    // Householder vector for column k: reflect x to ||x|| e_1.
    double norm2 = 0.0;
    for (std::size_t i = k; i < m_; ++i) {
      norm2 += qr_(i, k) * qr_(i, k);
    }
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0.0 ? -norm : norm;
    // v = x - alpha e1, normalized so v[0] = 1.
    const double v0 = qr_(k, k) - alpha;
    for (std::size_t i = k + 1; i < m_; ++i) {
      qr_(i, k) /= v0;
    }
    tau_[k] = -v0 / alpha;  // beta = 2 / (v^T v) with v[0] = 1 scaling
    qr_(k, k) = alpha;      // R diagonal

    // Apply reflector to the remaining columns.
    for (std::size_t j = k + 1; j < n_; ++j) {
      double dot = qr_(k, j);
      for (std::size_t i = k + 1; i < m_; ++i) {
        dot += qr_(i, k) * qr_(i, j);
      }
      dot *= tau_[k];
      qr_(k, j) -= dot;
      for (std::size_t i = k + 1; i < m_; ++i) {
        qr_(i, j) -= dot * qr_(i, k);
      }
    }
  }
}

void QrFactorization::apply_qt(Matrix& v) const {
  MFCP_CHECK(v.size() == m_, "vector length must match row count");
  for (std::size_t k = 0; k < n_; ++k) {
    if (tau_[k] == 0.0) {
      continue;
    }
    double dot = v[k];
    for (std::size_t i = k + 1; i < m_; ++i) {
      dot += qr_(i, k) * v[i];
    }
    dot *= tau_[k];
    v[k] -= dot;
    for (std::size_t i = k + 1; i < m_; ++i) {
      v[i] -= dot * qr_(i, k);
    }
  }
}

Matrix QrFactorization::q() const {
  // Apply the reflectors (in reverse) to the first n columns of I.
  Matrix q(m_, n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    Matrix e(m_, 1, 0.0);
    e[j] = 1.0;
    // Q e_j = H_0 H_1 ... H_{n-1} e_j: apply reflectors in reverse order.
    for (std::size_t kk = n_; kk-- > 0;) {
      if (tau_[kk] == 0.0) {
        continue;
      }
      double dot = e[kk];
      for (std::size_t i = kk + 1; i < m_; ++i) {
        dot += qr_(i, kk) * e[i];
      }
      dot *= tau_[kk];
      e[kk] -= dot;
      for (std::size_t i = kk + 1; i < m_; ++i) {
        e[i] -= dot * qr_(i, kk);
      }
    }
    q.set_col(j, e);
  }
  return q;
}

Matrix QrFactorization::r() const {
  Matrix r(n_, n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i; j < n_; ++j) {
      r(i, j) = qr_(i, j);
    }
  }
  return r;
}

bool QrFactorization::rank_deficient(double tol) const {
  for (std::size_t i = 0; i < n_; ++i) {
    if (std::abs(qr_(i, i)) < tol) {
      return true;
    }
  }
  return false;
}

Matrix QrFactorization::solve_least_squares(const Matrix& b) const {
  MFCP_CHECK(b.size() == m_, "rhs length must match row count");
  MFCP_CHECK(!rank_deficient(), "rank-deficient least-squares system");
  Matrix y = b.reshaped(m_, 1);
  apply_qt(y);
  // Back-substitute R x = (Q^T b)[0:n].
  Matrix x(n_, 1);
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) {
      acc -= qr_(ii, j) * x[j];
    }
    x[ii] = acc / qr_(ii, ii);
  }
  return x;
}

Matrix ridge_regression(const Matrix& x, const Matrix& y, double lambda) {
  MFCP_CHECK(x.rows() == y.size(), "sample count mismatch");
  MFCP_CHECK(lambda >= 0.0, "ridge penalty must be non-negative");
  const std::size_t s = x.rows();
  const std::size_t f = x.cols();
  // Augmented system [X; sqrt(lambda) I] w = [y; 0].
  const double root = std::sqrt(lambda);
  Matrix aug(s + f, f, 0.0);
  Matrix rhs(s + f, 1, 0.0);
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < f; ++j) {
      aug(i, j) = x(i, j);
    }
    rhs[i] = y[i];
  }
  for (std::size_t j = 0; j < f; ++j) {
    aug(s + j, j) = root;
  }
  return QrFactorization(std::move(aug)).solve_least_squares(rhs);
}

}  // namespace mfcp
