#include "linalg/matrix.hpp"

#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace mfcp {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    MFCP_CHECK(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 0.0);
}

Matrix Matrix::ones(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 1.0);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::column(std::span<const double> values) {
  Matrix m(values.size(), 1);
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::row(std::span<const double> values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

bool Matrix::is_vector() const noexcept {
  return rows_ <= 1 || cols_ <= 1;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  MFCP_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  MFCP_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double& Matrix::operator[](std::size_t i) {
  MFCP_DCHECK(i < data_.size(), "flat index out of range");
  return data_[i];
}

double Matrix::operator[](std::size_t i) const {
  MFCP_DCHECK(i < data_.size(), "flat index out of range");
  return data_[i];
}

std::span<double> Matrix::row_span(std::size_t r) {
  MFCP_DCHECK(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row_span(std::size_t r) const {
  MFCP_DCHECK(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

void Matrix::fill(double value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::reshaped(std::size_t rows, std::size_t cols) const {
  MFCP_CHECK(rows * cols == data_.size(),
             "reshape must preserve element count");
  Matrix m = *this;
  m.rows_ = rows;
  m.cols_ = cols;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::col_vector(std::size_t c) const {
  MFCP_CHECK(c < cols_, "column index out of range");
  Matrix v(rows_, 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    v(r, 0) = (*this)(r, c);
  }
  return v;
}

void Matrix::set_col(std::size_t c, const Matrix& v) {
  MFCP_CHECK(c < cols_, "column index out of range");
  MFCP_CHECK(v.size() == rows_, "column vector has wrong length");
  for (std::size_t r = 0; r < rows_; ++r) {
    (*this)(r, c) = v[r];
  }
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  MFCP_CHECK(same_shape(rhs), "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += rhs.data_[i];
  }
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  MFCP_CHECK(same_shape(rhs), "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= rhs.data_[i];
  }
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (auto& x : data_) {
    x *= s;
  }
  return *this;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (*this)(r, c);
      if (c + 1 < cols_) {
        os << ", ";
      }
    }
    os << (r + 1 < rows_ ? "],\n" : "]]");
  }
  return os.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) {
  lhs += rhs;
  return lhs;
}

Matrix operator-(Matrix lhs, const Matrix& rhs) {
  lhs -= rhs;
  return lhs;
}

Matrix operator*(Matrix m, double s) {
  m *= s;
  return m;
}

Matrix operator*(double s, Matrix m) {
  m *= s;
  return m;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  MFCP_CHECK(a.same_shape(b), "shape mismatch in hadamard");
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] * b[i];
  }
  return out;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (!a.same_shape(b)) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) {
      return false;
    }
  }
  return true;
}

}  // namespace mfcp
