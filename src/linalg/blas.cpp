#include "linalg/blas.hpp"

#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace mfcp {

namespace {

// Rows-of-A block size: keeps one A block plus the touched B rows in L1/L2.
constexpr std::size_t kBlock = 64;

// Multiplies rows [r0, r1) of A into rows [r0, r1) of C.
void matmul_rows(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
                 std::size_t r1) {
  const std::size_t inner = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = r0; i < r1; ++i) {
    double* crow = c.data() + i * n;
    const double* arow = a.data() + i * inner;
    for (std::size_t kk = 0; kk < inner; kk += kBlock) {
      const std::size_t kend = std::min(inner, kk + kBlock);
      for (std::size_t k = kk; k < kend; ++k) {
        const double aik = arow[k];
        const double* brow = b.data() + k * n;
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  MFCP_CHECK(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix c(a.rows(), b.cols(), 0.0);
  matmul_rows(a, b, c, 0, a.rows());
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  MFCP_CHECK(a.rows() == b.rows(), "matmul_tn: dimension mismatch");
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  const std::size_t inner = a.rows();
  Matrix c(m, n, 0.0);
  // (A^T B)_{ij} = sum_k A_{ki} B_{kj}: stream rows of A and B together.
  for (std::size_t k = 0; k < inner; ++k) {
    const double* arow = a.data() + k * m;
    const double* brow = b.data() + k * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double aki = arow[i];
      double* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += aki * brow[j];
      }
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  MFCP_CHECK(a.cols() == b.cols(), "matmul_nt: dimension mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = b.rows();
  const std::size_t inner = a.cols();
  Matrix c(m, n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a.data() + i * inner;
    double* crow = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* brow = b.data() + j * inner;
      double acc = 0.0;
      for (std::size_t k = 0; k < inner; ++k) {
        acc += arow[k] * brow[k];
      }
      crow[j] = acc;
    }
  }
  return c;
}

Matrix matmul_parallel(ThreadPool& pool, const Matrix& a, const Matrix& b) {
  MFCP_CHECK(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix c(a.rows(), b.cols(), 0.0);
  const auto blocks = partition_range(a.rows(), pool.size());
  if (blocks.size() <= 1) {
    matmul_rows(a, b, c, 0, a.rows());
    return c;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(blocks.size());
  for (const auto& [begin, end] : blocks) {
    futures.push_back(pool.submit([&, begin = begin, end = end] {
      matmul_rows(a, b, c, begin, end);
    }));
  }
  for (auto& f : futures) {
    f.get();
  }
  return c;
}

Matrix matvec(const Matrix& a, const Matrix& x) {
  MFCP_CHECK(x.size() == a.cols(), "matvec: dimension mismatch");
  Matrix y(a.rows(), 1, 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.data() + i * a.cols();
    double acc = 0.0;
    for (std::size_t k = 0; k < a.cols(); ++k) {
      acc += arow[k] * x[k];
    }
    y[i] = acc;
  }
  return y;
}

Matrix outer(const Matrix& a, const Matrix& b) {
  Matrix c(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      c(i, j) = a[i] * b[j];
    }
  }
  return c;
}

}  // namespace mfcp
