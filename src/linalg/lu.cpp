#include "linalg/lu.hpp"

#include <cmath>
#include <string>

#include "support/check.hpp"

namespace mfcp {

SingularMatrixError::SingularMatrixError(std::size_t pivot_index)
    : std::runtime_error("matrix is numerically singular at pivot " +
                         std::to_string(pivot_index)) {}

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  MFCP_CHECK(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  piv_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    piv_[i] = i;
  }

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |entry| in column k at/below row k.
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best < 1e-300) {
      throw SingularMatrixError(k);
    }
    if (p != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(p, c));
      }
      std::swap(piv_[k], piv_[p]);
      sign_ = -sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) / pivot;
      lu_(i, k) = m;
      if (m != 0.0) {
        for (std::size_t c = k + 1; c < n; ++c) {
          lu_(i, c) -= m * lu_(k, c);
        }
      }
    }
  }
}

Matrix LuFactorization::solve(const Matrix& b) const {
  const std::size_t n = dim();
  MFCP_CHECK(b.size() == n, "rhs length must match matrix dimension");
  Matrix x(n, 1);
  // Apply permutation, then forward substitution with unit-lower L.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[piv_[i]];
    for (std::size_t k = 0; k < i; ++k) {
      acc -= lu_(i, k) * x[k];
    }
    x[i] = acc;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) {
      acc -= lu_(ii, k) * x[k];
    }
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Matrix LuFactorization::solve_multi(const Matrix& b) const {
  const std::size_t n = dim();
  MFCP_CHECK(b.rows() == n, "rhs row count must match matrix dimension");
  Matrix x(n, b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    x.set_col(c, solve(b.col_vector(c)));
  }
  return x;
}

double LuFactorization::determinant() const noexcept {
  double det = sign_;
  for (std::size_t i = 0; i < dim(); ++i) {
    det *= lu_(i, i);
  }
  return det;
}

}  // namespace mfcp
