// Level-2/3 dense kernels: matrix-matrix and matrix-vector products.
//
// matmul uses a cache-blocked i-k-j loop order (row-major friendly: the
// innermost loop streams both B and C rows). A threaded variant splits the
// output rows across a pool for the larger products that appear in
// full-Jacobian KKT solves and batched predictor evaluation.
#pragma once

#include "linalg/matrix.hpp"
#include "parallel/thread_pool.hpp"

namespace mfcp {

/// C = A * B. Requires a.cols() == b.rows().
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B without materializing the transpose.
Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// C = A * B^T without materializing the transpose.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// Threaded C = A * B, splitting rows of A across the pool. Bitwise
/// identical to matmul() for any thread count (per-row accumulation order
/// is unchanged).
Matrix matmul_parallel(ThreadPool& pool, const Matrix& a, const Matrix& b);

/// y = A * x for x an n x 1 vector; returns an m x 1 vector.
Matrix matvec(const Matrix& a, const Matrix& x);

/// Outer product a * b^T of two vectors (flattened lengths m and n).
Matrix outer(const Matrix& a, const Matrix& b);

}  // namespace mfcp
