// Cholesky factorization for symmetric positive-definite systems.
//
// The Hessian block of the KKT system is SPD in the convex (exclusive
// execution) setting, so the reduced normal equations can be solved with
// Cholesky at half the LU cost; also used to verify convexity numerically
// (factorization failure <=> non-PD Hessian) in tests and diagnostics.
#pragma once

#include <stdexcept>

#include "linalg/matrix.hpp"

namespace mfcp {

/// Thrown when the input is not (numerically) positive definite.
class NotPositiveDefiniteError : public std::runtime_error {
 public:
  explicit NotPositiveDefiniteError(std::size_t pivot_index);
};

/// Lower-triangular Cholesky factor A = L L^T.
class CholeskyFactorization {
 public:
  /// Factors symmetric `a`; only the lower triangle is read.
  explicit CholeskyFactorization(const Matrix& a);

  [[nodiscard]] std::size_t dim() const noexcept { return l_.rows(); }

  /// The factor L (lower triangular).
  [[nodiscard]] const Matrix& factor() const noexcept { return l_; }

  /// Solves A x = b.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

 private:
  Matrix l_;
};

/// True iff `a` is numerically positive definite (Cholesky succeeds).
bool is_positive_definite(const Matrix& a);

}  // namespace mfcp
