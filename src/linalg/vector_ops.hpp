// Vector-flavoured helpers over Matrix (norms, dot products, softmax,
// log-sum-exp). These are the numeric primitives the smoothed matching
// objective (Eq. 8) and Algorithm 1's softmax projection are built from.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace mfcp {

/// Dot product over flattened elements. Shapes must match element count.
double dot(const Matrix& a, const Matrix& b);

/// Euclidean norm of all elements.
double norm2(const Matrix& m);

/// Max-abs (infinity) norm of all elements.
double norm_inf(const Matrix& m);

/// Sum of all elements.
double sum(const Matrix& m);

/// Maximum element. Requires non-empty input.
double max_element(const Matrix& m);

/// Numerically stable log(sum(exp(beta * x))) / beta over a span.
/// This is the paper's smooth-max (Theorem 1): max(x) <= lse <= max(x) +
/// log(n)/beta.
double log_sum_exp(std::span<const double> xs, double beta);

/// Softmax over a span with inverse temperature 1 (stable: shifts by max).
/// Output sums to exactly 1 up to rounding.
void softmax_inplace(std::span<double> xs);

/// Softmax with inverse temperature `beta`.
void softmax_inplace(std::span<double> xs, double beta);

/// Column-wise softmax of a matrix: every column becomes a distribution
/// over rows. This is exactly line 4 of Algorithm 1 (project each task's
/// assignment weights onto the simplex over clusters).
void softmax_columns_inplace(Matrix& m);

/// axpy: y += alpha * x (flattened; element counts must match).
void axpy(double alpha, const Matrix& x, Matrix& y);

}  // namespace mfcp
