// Size-or-timeout micro-batching policy for matching rounds.
//
// The matching solvers amortize well over larger rounds (one barrier solve
// for N tasks), but tasks left waiting burn their deadlines. The standard
// serving compromise is micro-batching: close a round as soon as EITHER
//   - the queue holds max_batch tasks (size trigger), OR
//   - the oldest waiting task has waited max_wait_hours (timeout trigger).
// A final flush round drains whatever remains when the stream ends.
//
// The policy is a pure function of (queue depth, head arrival time, clock),
// which keeps it unit-testable and the engine loop deterministic.
#pragma once

#include <cstddef>
#include <string>

#include "obs/metrics.hpp"

namespace mfcp::engine {

enum class RoundTrigger : int { kSize = 0, kTimeout = 1, kFlush = 2 };

std::string to_string(RoundTrigger trigger);

struct BatcherConfig {
  /// Tasks per matching round when the size trigger fires.
  std::size_t max_batch = 6;
  /// Longest the head of the queue may wait before a round is forced.
  double max_wait_hours = 0.25;
};

class MicroBatcher {
 public:
  explicit MicroBatcher(const BatcherConfig& config);

  /// Optional telemetry: per-trigger round counters and a batch-size
  /// histogram (`mfcp_engine_rounds_total`, `mfcp_engine_batch_size`).
  /// Null disables (default).
  void bind_metrics(obs::MetricsRegistry* registry);

  /// Records one closed round into the bound metrics (no-op when off).
  void record_round(RoundTrigger trigger, std::size_t batch_size) noexcept;

  [[nodiscard]] const BatcherConfig& config() const noexcept {
    return config_;
  }

  /// True when a round must close at time `now` given the queue state.
  [[nodiscard]] bool should_fire(std::size_t queue_depth,
                                 double oldest_arrival_time,
                                 double now) const noexcept;

  /// The absolute time at which the timeout trigger fires for a head job
  /// that arrived at `oldest_arrival_time`.
  [[nodiscard]] double timeout_at(double oldest_arrival_time) const noexcept {
    return oldest_arrival_time + config_.max_wait_hours;
  }

  /// Which trigger explains a round closing at `now` (size wins ties).
  [[nodiscard]] RoundTrigger classify(std::size_t queue_depth,
                                      double oldest_arrival_time,
                                      double now) const noexcept;

 private:
  /// Cached registry handles (null when telemetry is off).
  struct Telemetry {
    obs::Counter* rounds[3] = {nullptr, nullptr, nullptr};  // by trigger
    obs::Histogram* batch_size = nullptr;
  };

  BatcherConfig config_;
  Telemetry telemetry_;
};

}  // namespace mfcp::engine
