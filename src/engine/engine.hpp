// The online platform engine: an event-driven runtime that turns the
// offline MFCP pipeline into a continuously operating exchange platform.
//
//   arrivals ──> admission queue ──> micro-batcher ──> matching round
//                                                         │
//        replay buffer + drift detector  <── dispatch <───┘
//                │
//                └─ retrain burst (fine-tunes the predictors in place)
//
// Each matching round embeds the batched tasks, predicts (T̂, Â) with the
// shared PlatformPredictor, solves the deployment matching (offloaded to a
// ThreadPool when one is provided — the reference solve for regret runs
// concurrently), dispatches through the failure-injection simulator, and
// feeds observed outcomes back into the drift-aware online trainer.
//
// The whole run is simulated-time deterministic: identical EngineConfig,
// platform, and predictor state produce identical round assignments and
// per-round records (the wall-clock solve_seconds field is the single
// nondeterministic diagnostic and is excluded from metric CSVs).
#pragma once

#include <atomic>
#include <deque>
#include <vector>

#include "control/ratekeeper.hpp"
#include "control/token_bucket.hpp"
#include "engine/arrivals.hpp"
#include "engine/batcher.hpp"
#include "engine/checkpoint.hpp"
#include "engine/online_trainer.hpp"
#include "engine/queue.hpp"
#include "engine/service.hpp"
#include "mfcp/metrics.hpp"
#include "mfcp/regret.hpp"
#include "obs/attribution.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/trace_store.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/embedding.hpp"
#include "sim/failure.hpp"
#include "storage/storage.hpp"

namespace mfcp::engine {

/// A scheduled environment change: at simulated time `at_hours`, cluster
/// `cluster` drifts (see sim::ClusterDrift).
struct DriftEventSpec {
  double at_hours = 0.0;
  std::size_t cluster = 0;
  sim::ClusterDrift drift;
};

struct EngineConfig {
  ArrivalConfig arrivals;
  QueueConfig queue;
  BatcherConfig batcher;
  OnlineTrainerConfig trainer;
  core::EvaluationConfig eval;
  double gamma = 0.8;
  sim::SpeedupCurve speedup = sim::SpeedupCurve::exclusive();

  /// false freezes the predictor: outcomes are still observed and the
  /// drift statistic still reported, but no retraining happens (the
  /// baseline mode of bench/exp_online_engine).
  bool online_retraining = true;

  /// Per dispatched task, probability that the platform also shadow-
  /// profiles it on every other cluster (full-row labels). Deployment
  /// feedback alone is bandit feedback — a cluster the matcher avoids is
  /// never observed, so a cluster that drifts *faster* could never be
  /// rediscovered without this exploration budget.
  double profile_probability = 0.1;

  /// Rolling metrics window, in rounds, for the per-round CSV and the
  /// windowed summaries (uses MetricsAccumulator reset()/merge()).
  std::size_t metrics_window = 16;

  /// Per-round regret attribution: decompose each round's realized regret
  /// into prediction / solver / rounding / admission terms
  /// (core::attribute_regret), record them through `registry` and the
  /// journal, and keep the queue's lost arrivals for the admission
  /// counterfactual. Costs two warm-started polish solves per round (the
  /// chains' relaxed solutions continued to a tighter stationary point);
  /// decisions are unaffected — attribution only observes.
  bool attribution = false;

  /// Scheduled environment drift, sorted or not (the engine sorts).
  std::vector<DriftEventSpec> drift_events;

  /// Optional cooperative-stop flag, polled between events: when it flips
  /// true, run() stops consuming arrivals, drains the queue with flush
  /// rounds, and returns. Unset (the default) preserves run-to-exhaustion
  /// semantics exactly. This is how SIGINT/SIGTERM shut the example down
  /// gracefully — a signal handler's atomic store is all it takes.
  const std::atomic<bool>* stop_flag = nullptr;

  /// Seeds dispatch/profiling randomness (arrival randomness is seeded by
  /// arrivals.seed; retraining by trainer.seed).
  std::uint64_t seed = 0xe61e0ULL;

  /// Optional telemetry (all null by default = off, near-zero overhead):
  /// `registry` receives per-stage latency histograms
  /// (mfcp_engine_stage_seconds{stage=...}), queue/batcher/drift metrics,
  /// and round counters; `trace` additionally retains the most recent
  /// stage spans; `journal` receives one JSONL record per closed round
  /// (deterministic fields only, in a stable order — two identical seeded
  /// runs produce bit-identical journals). All are borrowed and must
  /// outlive the engine.
  obs::MetricsRegistry* registry = nullptr;
  obs::TraceRing* trace = nullptr;
  obs::JsonlWriter* journal = nullptr;

  /// Task-lifecycle tracing: sampled tasks accumulate per-stage spans
  /// (submit → queue_wait → batch → predict → match → dispatch →
  /// feedback, or a terminal expired/rejected) in `task_traces`. The
  /// sampling decision is a pure function of (task id, trace_salt,
  /// trace_sample_rate) — no RNG draw, no effect on decisions — so the
  /// round journal stays byte-identical with tracing on or off, and the
  /// gateway mints the same ids for external submissions. Null disables
  /// tracing; span sim-time endpoints are deterministic, wall durations
  /// are diagnostic only.
  obs::TraceStore* task_traces = nullptr;
  double trace_sample_rate = 0.0;
  std::uint64_t trace_salt = 0;

  /// Black-box flight recorder: the round loop records
  /// round/batch/admission/queue events onto the calling thread's ring
  /// and heartbeats into the watchdog (run() as "engine_run", serve() as
  /// "engine_serve"). Write-only telemetry — the engine never reads it
  /// back, so decisions and the byte-compared round journal are
  /// untouched. Borrowed; null disables recording entirely.
  obs::FlightRecorder* flight = nullptr;

  /// SLO monitor: fed one observation per closed round (dispatch
  /// successes, expiries, regret gap) and evaluated after each, on the
  /// simulated clock. Borrowed; bound to `registry` when both are set.
  obs::SloMonitor* slo = nullptr;

  /// Closed-loop admission control: both must be set to enable. The
  /// Ratekeeper is ticked after every closed round (run() and serve()
  /// alike) and its rate published into the bucket table; synthetic
  /// arrivals then spend an anonymous-bucket token at the door (throttled
  /// arrivals never reach the queue, a trace, or the status table), while
  /// external submissions are charged by the GatewayLink at POST /submit
  /// against the *same* table — never twice. Both borrowed; engine-side
  /// ticks and admissions stay on the simulated clock, so seeded runs
  /// make identical admission decisions.
  control::Ratekeeper* ratekeeper = nullptr;
  control::TokenBucketTable* admission_buckets = nullptr;

  /// Durability layer (--data-dir): when set, every accepted task is
  /// WAL-logged before it can be lost (external ids at the gateway door,
  /// synthetic ids at the queue push), terminal transitions append
  /// dispatched/expired/rejected records, the round journal is copied
  /// into the time-chunked store, and the predictor+counters are
  /// checkpointed every checkpoint_every_rounds rounds plus once at
  /// shutdown. Write-only during a run: decisions, metrics, and the
  /// byte-compared round journal are identical with storage attached.
  /// Borrowed; null (the default) disables durability entirely.
  storage::StorageManager* storage = nullptr;
};

/// One closed matching round, as written to the metrics CSV.
struct RoundRecord {
  std::size_t round = 0;
  double close_hours = 0.0;      // simulated time the round closed
  RoundTrigger trigger = RoundTrigger::kSize;
  std::size_t batch = 0;         // tasks matched this round
  std::size_t queue_depth = 0;   // remaining after the pop
  std::size_t dropped_total = 0; // cumulative capacity + expiry drops
  double max_wait_hours = 0.0;   // batching delay of the oldest task
  double regret = 0.0;
  double reliability = 0.0;
  double utilization = 0.0;
  double makespan = 0.0;
  double drift_stat = 0.0;       // per-round relative time-prediction error
  bool retrained = false;
  std::size_t retrain_total = 0;
  double rolling_regret = 0.0;   // mean over the trailing metrics window
  double solve_seconds = 0.0;    // wall clock (diagnostic, nondeterministic)
  std::size_t dispatch_ok = 0;   // first-attempt successes (not journaled)
  /// Regret decomposition (valid only when EngineConfig::attribution).
  obs::RegretBreakdown attribution;
  /// Admission-control state at round close (valid only when the engine
  /// runs with a Ratekeeper; journaled only then, so runs without one
  /// stay byte-identical to pre-Ratekeeper journals).
  bool ratekeeper_valid = false;
  double admission_rate_per_hour = 0.0;
  std::uint64_t throttled_total = 0;  // cumulative bucket throttles
  control::LimitingSignal limiting_signal = control::LimitingSignal::kNone;
};

/// Appends `rec` to the JSONL round journal with a stable field order.
/// Only deterministic fields are written — wall-clock solve_seconds stays
/// out, so seeded runs journal bit-identically. `label` tags the run
/// (e.g. "online" vs "frozen" in paired benchmarks); empty omits the tag.
void append_round_journal(obs::JsonlWriter& journal, const RoundRecord& rec,
                          std::string_view label = {});

/// Summary of one completed metrics window (every metrics_window rounds).
struct WindowSummary {
  std::size_t last_round = 0;
  core::MetricsAccumulator metrics;
};

/// What OnlineEngine::recover() found and did (see its contract).
struct RecoveryReport {
  bool checkpoint_loaded = false;        // a snapshot generation restored
  std::uint64_t checkpoint_generation = 0;
  std::uint64_t replayed = 0;   // external acked-unterminal tasks re-queued
  std::uint64_t dropped = 0;    // replays the bounded queue refused
  std::uint64_t terminal = 0;   // WAL-witnessed terminal acceptances
  std::uint64_t truncated_bytes = 0;  // torn WAL tail removed at startup
  double resume_hours = 0.0;    // simulated clock after recovery
};

struct EngineResult {
  std::vector<RoundRecord> rounds;
  std::vector<WindowSummary> windows;
  core::MetricsAccumulator total;
  EngineCounters counters;
  QueueStats queue;
  double wall_seconds = 0.0;
  /// Submissions the token buckets refused (engine door + gateway door;
  /// zero without a Ratekeeper).
  std::uint64_t throttled = 0;
};

/// How serve() maps wall time onto the simulated clock and paces its
/// event loop (see OnlineEngine::serve).
struct ServeConfig {
  /// Simulated hours that elapse per wall-clock second. Batcher timeouts
  /// and task deadlines are simulated-time quantities, so this sets the
  /// real-time round cadence: at 120 h/s a 0.25 h batching window closes
  /// in ~2 ms of wall time.
  double hours_per_second = 120.0;
  /// Upper bound on one condition-variable wait, bounding how stale the
  /// stop flag / signal check can get. Submissions wake the loop early.
  int poll_ms = 20;
  /// Also consume the config's synthetic arrival stream on the same
  /// simulated clock (external + synthetic traffic interleave).
  bool synthetic_arrivals = false;
};

class OnlineEngine {
 public:
  /// The engine owns its platform copy (drift events mutate it locally)
  /// and borrows the predictor, so harnesses can pretrain, checkpoint,
  /// and compare predictors across engine runs.
  OnlineEngine(EngineConfig config, sim::Platform platform,
               const sim::PseudoGnnEmbedder& embedder,
               core::PlatformPredictor& predictor,
               ThreadPool* pool = nullptr);

  /// Consumes the arrival stream to exhaustion and returns the full
  /// per-round trace. Callable once per engine instance.
  EngineResult run();

  /// Real-time service mode: the engine becomes the backend of a platform
  /// gateway. Wall time drives the simulated clock (ServeConfig), external
  /// submissions drain from `link` into the admission queue (stamped at
  /// the current simulated time), and their lifecycle is written to the
  /// link's status table (queued → matched → dispatched / expired /
  /// rejected). Runs until link.request_stop() or the config's stop_flag,
  /// then flushes the queue and returns. Mutually exclusive with run()
  /// (one shot per engine instance either way). Unlike run(), wall-clock
  /// scheduling makes serve() runs nondeterministic by construction.
  EngineResult serve(GatewayLink& link, const ServeConfig& serve_config);

  /// Checkpoints the predictor weights plus current engine counters.
  void checkpoint(const std::string& path);

  /// Restores predictor weights and counters from a checkpoint.
  void restore(const std::string& path);

  /// Crash recovery from EngineConfig::storage, before run()/serve():
  /// restores the newest valid snapshot generation (predictor weights,
  /// counters, simulated clock, retrain schedule), then replays every
  /// acked-but-unterminal external task from the WAL scan back into the
  /// admission queue — stamped at its original accept time, original
  /// absolute deadline — re-appends those acceptances to the fresh log,
  /// and compacts the superseded segments. Synthetic outstanding records
  /// are skipped: the seeded arrival stream regenerates them exactly.
  /// When `link` is set, replayed tasks reappear in its status table as
  /// queued (capacity refusals transition straight to rejected) and the
  /// recovered counts land in /stats. Never throws on torn or empty WAL
  /// state — an unrecoverable store degrades to a cold start.
  RecoveryReport recover(GatewayLink* link = nullptr);

  [[nodiscard]] const EngineCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const sim::Platform& platform() const noexcept {
    return platform_;
  }

 private:
  /// Shared per-round bookkeeping for run() and serve(): the rolling
  /// regret window, tumbling metric windows, and the JSONL journal.
  struct RunLog {
    EngineResult result;
    core::MetricsAccumulator window;
    std::deque<double> recent_regret;
  };

  void advance_clock(double to_hours);
  RoundRecord run_round(RoundTrigger trigger);
  /// Deterministic per-task sampling decision (see trace_sample_rate).
  [[nodiscard]] bool task_traced(std::uint64_t task_id) const noexcept;
  /// Opens the trace (+ submit span) for a sampled synthetic arrival;
  /// external ids are opened by the gateway link at POST /submit.
  void maybe_begin_trace(const Arrival& arrival);
  /// Feeds the SLO monitor after a round (rec) or a between-round expiry
  /// sweep (nullptr), then re-evaluates the burn rates (captured for the
  /// Ratekeeper's burn signal).
  void note_slo(const RoundRecord* rec);
  /// True when the Ratekeeper is enabled and the anonymous bucket refuses
  /// `arrival` (synthetic arrivals only; external ids were charged at the
  /// gateway door and pass through untouched).
  [[nodiscard]] bool admission_throttled(const Arrival& arrival);
  /// One controller step after a closed round: feeds the signals, ticks
  /// the Ratekeeper, publishes the rate into the bucket table, exports
  /// the mfcp_ratekeeper_* metrics, and stamps `rec`'s admission fields.
  void tick_ratekeeper(RoundRecord& rec);
  /// Records one flight event at the current simulated time (no-op
  /// without a recorder; never affects decisions or the journal).
  void flight(obs::FlightKind kind, std::uint64_t a0 = 0,
              std::uint64_t a1 = 0, std::uint64_t a2 = 0,
              std::uint64_t trace_id = 0) noexcept;
  /// Expires the queue, runs one round if anything is left, and folds the
  /// record into `log` (returns false when the queue emptied first).
  bool finish_round(RoundTrigger trigger, RunLog& log);
  /// Flushes the partial metrics window and fills result counters.
  void finalize(RunLog& log, double wall_seconds);
  void bind_metrics();
  /// Folds the restarted queue's stats onto the recovered base so the
  /// drop/expiry/dispatch counters stay monotone across recover().
  void refresh_counters();
  /// WAL acceptance record for a synthetic arrival about to be pushed
  /// (external ids were logged at the gateway door; no-op without
  /// storage).
  void wal_accepted(const Arrival& arrival);
  /// WAL terminal record (dispatched/expired/rejected) for any task id.
  void wal_terminal(std::uint64_t id, storage::WalRecordType type);
  /// Chunk-journal task-trace record for an external task's terminal
  /// transition (no-op without storage or for synthetic ids).
  void journal_task(std::uint64_t id, const char* state);
  /// Publishes a snapshot generation through the storage checkpoints
  /// (maybe_: only on the checkpoint_every_rounds cadence).
  void publish_checkpoint();
  void maybe_publish_checkpoint();

  /// Cached registry handles for the round loop's own stages (the queue,
  /// batcher, and trainer cache theirs in bind_metrics). Null when off.
  struct Telemetry {
    obs::Histogram* embed = nullptr;
    obs::Histogram* predict = nullptr;
    obs::Histogram* match = nullptr;
    obs::Histogram* attribute = nullptr;
    obs::Histogram* dispatch = nullptr;
    obs::Histogram* queue_wait_hours = nullptr;  // simulated-time waits
    obs::Counter* tasks_matched = nullptr;
    obs::Counter* retrains = nullptr;
    obs::Gauge* sim_time = nullptr;
    // Ratekeeper export (bound only when both the registry and the
    // controller are configured).
    obs::Gauge* rk_rate = nullptr;
    obs::Gauge* rk_tokens = nullptr;
    obs::Gauge* rk_limiting = nullptr;
    obs::Counter* rk_throttled = nullptr;
  };

  EngineConfig config_;
  sim::Platform platform_;
  const sim::PseudoGnnEmbedder& embedder_;
  core::PlatformPredictor& predictor_;
  ThreadPool* pool_;

  ArrivalProcess arrivals_;
  AdmissionQueue queue_;
  MicroBatcher batcher_;
  OnlineTrainer trainer_;
  Rng dispatch_rng_;

  double clock_hours_ = 0.0;
  std::size_t next_drift_ = 0;
  std::uint64_t slo_expired_seen_ = 0;  // queue expiry counter watermark
  double last_slo_burn_ = 0.0;  // max min(fast, slow) burn, latest evaluate
  std::uint64_t rk_expired_seen_ = 0;    // ratekeeper's own expiry watermark
  std::uint64_t rk_throttled_seen_ = 0;  // exported-counter watermark
  EngineCounters counters_;
  /// Counter totals restored by restore()/recover(): the queue restarts
  /// at zero, so refresh_counters() adds its stats onto this base.
  EngineCounters restored_base_;
  Telemetry telemetry_;
  obs::AttributionRecorder attribution_recorder_;
  /// Non-null only while serve() runs: receives status transitions for
  /// externally submitted tasks and round/queue hints for /stats.
  GatewayLink* link_ = nullptr;
  bool ran_ = false;
};

}  // namespace mfcp::engine
