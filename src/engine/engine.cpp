#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>
#include <sstream>
#include <unordered_set>

#include "obs/profiler.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"

namespace mfcp::engine {

namespace {
// kQueueTransition state ordinals (a1) and kAdmission shed reasons (a2);
// part of the recorded event vocabulary, decoded by readers of the
// /debug/flight route and `.flight` dumps.
constexpr std::uint64_t kQueueQueued = 1;
constexpr std::uint64_t kQueueExpired = 2;
constexpr std::uint64_t kQueueRejected = 3;
constexpr std::uint64_t kShedThrottled = 1;  // token bucket refused
constexpr std::uint64_t kShedCapacity = 2;   // queue rejected the push
}  // namespace

OnlineEngine::OnlineEngine(EngineConfig config, sim::Platform platform,
                           const sim::PseudoGnnEmbedder& embedder,
                           core::PlatformPredictor& predictor,
                           ThreadPool* pool)
    : config_(std::move(config)),
      platform_(std::move(platform)),
      embedder_(embedder),
      predictor_(predictor),
      pool_(pool),
      arrivals_(config_.arrivals),
      queue_(config_.queue),
      batcher_(config_.batcher),
      trainer_(config_.trainer),
      dispatch_rng_(config_.seed ^ 0xd15a7c4ULL) {
  MFCP_CHECK(platform_.num_clusters() == predictor_.num_clusters(),
             "platform and predictor disagree on cluster count");
  MFCP_CHECK(config_.gamma > 0.0 && config_.gamma < 1.0,
             "gamma must lie in (0, 1)");
  MFCP_CHECK(config_.profile_probability >= 0.0 &&
                 config_.profile_probability <= 1.0,
             "profile probability must lie in [0, 1]");
  MFCP_CHECK(config_.metrics_window > 0, "metrics window must be positive");
  std::sort(config_.drift_events.begin(), config_.drift_events.end(),
            [](const DriftEventSpec& a, const DriftEventSpec& b) {
              return a.at_hours < b.at_hours;
            });
  queue_.set_loss_tracking(config_.attribution);
  // Lifecycle bookkeeping for every lost arrival, in run() and serve()
  // alike: traced tasks get their terminal span, externally submitted
  // tasks their status-table transition. Both paths are no-ops when their
  // sink is absent.
  queue_.set_loss_callback(
      [this](const Arrival& a, AdmissionQueue::Loss loss) {
        const bool expired = loss == AdmissionQueue::Loss::kExpired;
        if (config_.task_traces != nullptr) {
          const char* state = expired ? "expired" : "rejected";
          obs::TaskSpan span;
          span.name = state;
          span.start_hours = a.time_hours;
          span.end_hours = clock_hours_;
          if (config_.task_traces->append(a.id, std::move(span))) {
            config_.task_traces->finish(a.id, state);
          }
        }
        if (link_ != nullptr && a.id >= kExternalIdBase) {
          link_->table().mark_lost(a.id, expired ? TaskState::kExpired
                                                 : TaskState::kRejected);
        }
        wal_terminal(a.id, expired ? storage::WalRecordType::kExpired
                                   : storage::WalRecordType::kRejected);
        journal_task(a.id, expired ? "expired" : "rejected");
        flight(obs::FlightKind::kQueueTransition, a.id,
               expired ? kQueueExpired : kQueueRejected, queue_.depth());
      });
  if (config_.slo != nullptr && config_.registry != nullptr) {
    config_.slo->bind_metrics(config_.registry);
  }
  MFCP_CHECK((config_.ratekeeper == nullptr) ==
                 (config_.admission_buckets == nullptr),
             "ratekeeper and admission buckets enable together");
  if (config_.ratekeeper != nullptr) {
    // Publish the controller's initial rate so the very first admissions
    // are already governed (tick() refines it every round).
    config_.admission_buckets->set_global_rate(
        config_.ratekeeper->status().rate_per_hour, clock_hours_);
  }
  bind_metrics();
}

bool OnlineEngine::task_traced(std::uint64_t task_id) const noexcept {
  return config_.task_traces != nullptr &&
         obs::trace_sampled(
             obs::mint_trace_id(task_id, config_.trace_salt),
             config_.trace_sample_rate);
}

void OnlineEngine::maybe_begin_trace(const Arrival& arrival) {
  if (config_.task_traces == nullptr || arrival.id >= kExternalIdBase) {
    return;  // external tasks were opened at POST /submit
  }
  const std::uint64_t trace_id =
      obs::mint_trace_id(arrival.id, config_.trace_salt);
  if (!obs::trace_sampled(trace_id, config_.trace_sample_rate)) {
    return;
  }
  if (config_.task_traces->begin(arrival.id, trace_id, arrival.time_hours)) {
    obs::TaskSpan span;
    span.name = "submit";
    span.start_hours = arrival.time_hours;
    span.end_hours = arrival.time_hours;
    config_.task_traces->append(arrival.id, std::move(span));
  }
}

void OnlineEngine::note_slo(const RoundRecord* rec) {
  if (config_.slo == nullptr) {
    return;
  }
  const std::uint64_t expired_total = queue_.stats().expired;
  const std::uint64_t expired_delta = expired_total - slo_expired_seen_;
  slo_expired_seen_ = expired_total;
  if (rec != nullptr) {
    // Regret-gap SLI: the attribution total when available (it equals the
    // realized regret plus the admission counterfactual), the raw round
    // regret otherwise.
    const double gap =
        rec->attribution.valid ? rec->attribution.total : rec->regret;
    config_.slo->observe_round(clock_hours_, rec->batch, rec->dispatch_ok,
                               expired_delta, gap, true);
  } else if (expired_delta > 0) {
    config_.slo->observe_round(clock_hours_, 0, 0, expired_delta, 0.0,
                               false);
  } else {
    return;  // nothing new; keep the previous evaluation
  }
  // Capture the burn the Ratekeeper normalizes against: max over rules of
  // min(fast, slow) — the same both-windows conjunction the firing rule
  // applies, so the controller reacts exactly when alerts are near.
  double burn = 0.0;
  for (const obs::SloState& state : config_.slo->evaluate(clock_hours_)) {
    burn = std::max(burn, std::min(state.fast_burn, state.slow_burn));
  }
  last_slo_burn_ = burn;
}

void OnlineEngine::flight(obs::FlightKind kind, std::uint64_t a0,
                          std::uint64_t a1, std::uint64_t a2,
                          std::uint64_t trace_id) noexcept {
  if (config_.flight != nullptr) {
    config_.flight->record(kind, clock_hours_, a0, a1, a2, trace_id);
  }
}

bool OnlineEngine::admission_throttled(const Arrival& arrival) {
  if (config_.admission_buckets == nullptr ||
      arrival.id >= kExternalIdBase) {
    return false;  // external tasks were charged at the gateway door
  }
  return !config_.admission_buckets
              ->try_admit(control::kAnonymousClient, clock_hours_)
              .admitted;
}

void OnlineEngine::tick_ratekeeper(RoundRecord& rec) {
  if (config_.ratekeeper == nullptr) {
    return;
  }
  const std::uint64_t expired_total = queue_.stats().expired;
  control::RatekeeperSignals signals;
  signals.now_hours = clock_hours_;
  signals.queue_depth = queue_.depth();
  signals.queue_capacity = config_.queue.capacity;
  signals.batch_wait_hours = rec.max_wait_hours;
  signals.batch = rec.batch;
  signals.expired = expired_total - rk_expired_seen_;
  signals.slo_burn = last_slo_burn_;
  rk_expired_seen_ = expired_total;

  const double rate = config_.ratekeeper->tick(signals);
  config_.admission_buckets->set_global_rate(rate, clock_hours_);

  rec.ratekeeper_valid = true;
  rec.admission_rate_per_hour = rate;
  rec.throttled_total = config_.admission_buckets->throttled_total();
  rec.limiting_signal = config_.ratekeeper->status().limiting;

  if (telemetry_.rk_rate != nullptr) {
    telemetry_.rk_rate->set(rate);
    telemetry_.rk_tokens->set(config_.admission_buckets->tokens_total());
    telemetry_.rk_limiting->set(
        static_cast<double>(static_cast<int>(rec.limiting_signal)));
    telemetry_.rk_throttled->add(rec.throttled_total - rk_throttled_seen_);
    rk_throttled_seen_ = rec.throttled_total;
  }
}

void OnlineEngine::wal_accepted(const Arrival& arrival) {
  if (config_.storage == nullptr || arrival.id >= kExternalIdBase) {
    return;  // external acceptances were logged at the gateway door
  }
  storage::WalRecord rec;
  rec.type = storage::WalRecordType::kAccepted;
  rec.task_id = arrival.id;
  rec.hours = arrival.time_hours;
  rec.deadline_hours = arrival.deadline_hours;
  rec.task = arrival.task;
  config_.storage->wal().append(rec);
}

void OnlineEngine::wal_terminal(std::uint64_t id,
                                storage::WalRecordType type) {
  if (config_.storage == nullptr) {
    return;
  }
  storage::WalRecord rec;
  rec.type = type;
  rec.task_id = id;
  rec.hours = clock_hours_;
  config_.storage->wal().append(rec);
}

void OnlineEngine::journal_task(std::uint64_t id, const char* state) {
  if (config_.storage == nullptr || id < kExternalIdBase) {
    return;  // task traces are journaled for external submissions only
  }
  std::ostringstream os;
  {
    obs::JsonlWriter trace(os);
    trace.field("record", std::string_view("task"))
        .field("task", id)
        .field("state", std::string_view(state))
        .field("close_hours", clock_hours_);
    trace.end_record();
  }
  std::string line = os.str();
  while (!line.empty() && line.back() == '\n') {
    line.pop_back();
  }
  config_.storage->journal().append(clock_hours_, line);
}

void OnlineEngine::publish_checkpoint() {
  if (config_.storage == nullptr) {
    return;
  }
  refresh_counters();
  config_.storage->checkpoints().publish(
      config_.storage->wal().stats().last_seq, [this](std::ostream& os) {
        save_checkpoint(os, predictor_, counters_);
      });
}

void OnlineEngine::maybe_publish_checkpoint() {
  const std::size_t every =
      config_.storage->config().checkpoint_every_rounds;
  if (every == 0 || counters_.rounds == 0 || counters_.rounds % every != 0) {
    return;
  }
  publish_checkpoint();
}

void OnlineEngine::refresh_counters() {
  // The queue restarted at zero after recover(); add its stats onto the
  // restored base so these totals stay monotone across incarnations.
  counters_.dropped_capacity =
      restored_base_.dropped_capacity + queue_.stats().dropped_capacity;
  counters_.expired = restored_base_.expired + queue_.stats().expired;
  counters_.dispatched =
      restored_base_.dispatched + queue_.stats().dispatched;
  counters_.sim_time_hours = clock_hours_;
}

void OnlineEngine::bind_metrics() {
  queue_.bind_metrics(config_.registry);
  batcher_.bind_metrics(config_.registry);
  trainer_.bind_metrics(config_.registry);
  if (config_.registry == nullptr) {
    return;
  }
  obs::MetricsRegistry& reg = *config_.registry;
  const auto stage = [&reg](const char* name) {
    return &reg.histogram(
        std::string("mfcp_engine_stage_seconds{stage=\"") + name + "\"}",
        obs::default_time_bounds());
  };
  telemetry_.embed = stage("embed");
  telemetry_.predict = stage("predict");
  telemetry_.match = stage("match");
  if (config_.attribution) {
    telemetry_.attribute = stage("attribute");
    attribution_recorder_.bind(&reg);
  }
  telemetry_.dispatch = stage("dispatch");
  // Queue waits live on the simulated clock (hours), not the wall clock;
  // bounds follow typical max_wait_hours/deadline configurations.
  static constexpr double kWaitBounds[] = {0.01, 0.025, 0.05,  0.1, 0.25,
                                           0.5,  1.0,   2.0,   4.0};
  telemetry_.queue_wait_hours =
      &reg.histogram("mfcp_engine_queue_wait_hours", kWaitBounds);
  telemetry_.tasks_matched = &reg.counter("mfcp_engine_tasks_matched_total");
  telemetry_.retrains = &reg.counter("mfcp_engine_retrains_total");
  telemetry_.sim_time = &reg.gauge("mfcp_engine_sim_time_hours");
  if (config_.ratekeeper != nullptr) {
    telemetry_.rk_rate = &reg.gauge("mfcp_ratekeeper_rate");
    telemetry_.rk_tokens = &reg.gauge("mfcp_ratekeeper_tokens");
    telemetry_.rk_limiting = &reg.gauge("mfcp_ratekeeper_limiting_signal");
    telemetry_.rk_throttled =
        &reg.counter("mfcp_ratekeeper_throttled_total");
  }
}

void append_round_journal(obs::JsonlWriter& journal, const RoundRecord& rec,
                          std::string_view label) {
  if (!label.empty()) {
    journal.field("mode", label);
  }
  journal.field("round", static_cast<std::uint64_t>(rec.round))
      .field("close_hours", rec.close_hours)
      .field("trigger", to_string(rec.trigger))
      .field("batch", static_cast<std::uint64_t>(rec.batch))
      .field("queue_depth", static_cast<std::uint64_t>(rec.queue_depth))
      .field("dropped_total", static_cast<std::uint64_t>(rec.dropped_total))
      .field("max_wait_hours", rec.max_wait_hours)
      .field("regret", rec.regret)
      .field("rolling_regret", rec.rolling_regret)
      .field("reliability", rec.reliability)
      .field("utilization", rec.utilization)
      .field("makespan", rec.makespan)
      .field("drift_stat", rec.drift_stat)
      .field("retrained", rec.retrained)
      .field("retrain_total", static_cast<std::uint64_t>(rec.retrain_total));
  if (rec.ratekeeper_valid) {
    journal.field("admission_rate", rec.admission_rate_per_hour)
        .field("throttled_total", rec.throttled_total)
        .field("limiting_signal",
               control::to_string(rec.limiting_signal));
  }
  if (rec.attribution.valid) {
    journal.field("pred_gap", rec.attribution.pred_gap)
        .field("solver_gap", rec.attribution.solver_gap)
        .field("rounding_gap", rec.attribution.rounding_gap)
        .field("admission_gap", rec.attribution.admission_gap)
        .field("attr_total", rec.attribution.total)
        .field("solver_residual", rec.attribution.solver_residual);
  }
  journal.end_record();
}

void OnlineEngine::advance_clock(double to_hours) {
  MFCP_DCHECK(to_hours >= clock_hours_, "simulated clock moved backwards");
  while (next_drift_ < config_.drift_events.size() &&
         config_.drift_events[next_drift_].at_hours <= to_hours) {
    const DriftEventSpec& event = config_.drift_events[next_drift_];
    MFCP_CHECK(event.cluster < platform_.num_clusters(),
               "drift event references unknown cluster");
    sim::apply_drift(platform_, event.cluster, event.drift);
    MFCP_LOG(kInfo) << "t=" << event.at_hours << "h: cluster "
                    << platform_.cluster(event.cluster).name()
                    << " drifted (time x" << event.drift.time_scale
                    << ", logit " << event.drift.reliability_logit_shift
                    << ")";
    ++next_drift_;
  }
  clock_hours_ = to_hours;
}

bool OnlineEngine::finish_round(RoundTrigger trigger, RunLog& log) {
  queue_.expire(clock_hours_);
  if (queue_.empty()) {
    note_slo(nullptr);
    if (link_ != nullptr) {
      link_->note_queue_depth(0);
    }
    return false;
  }
  RoundRecord rec = run_round(trigger);
  note_slo(&rec);
  tick_ratekeeper(rec);

  // Trailing rolling window for the CSV...
  log.recent_regret.push_back(rec.regret);
  if (log.recent_regret.size() > config_.metrics_window) {
    log.recent_regret.pop_front();
  }
  rec.rolling_regret = std::accumulate(log.recent_regret.begin(),
                                       log.recent_regret.end(), 0.0) /
                       static_cast<double>(log.recent_regret.size());

  // ...and tumbling windows folded into the running total via the
  // streaming reset()/merge() pair.
  core::MatchOutcome outcome;
  outcome.regret = rec.regret;
  outcome.reliability = rec.reliability;
  outcome.utilization = rec.utilization;
  outcome.makespan = rec.makespan;
  outcome.feasible = rec.reliability >= config_.gamma;
  log.window.add(outcome);
  if (log.window.rounds() >= config_.metrics_window) {
    log.result.windows.push_back(WindowSummary{rec.round, log.window});
    log.result.total.merge(log.window);
    log.window.reset();
  }
  if (config_.journal != nullptr) {
    append_round_journal(*config_.journal, rec);
  }
  if (config_.storage != nullptr) {
    // The chunked on-disk journal gets a byte-identical copy of the same
    // record (same writer, same field order), routed by its close time.
    std::ostringstream os;
    {
      obs::JsonlWriter chunk_journal(os);
      append_round_journal(chunk_journal, rec);
    }
    std::string line = os.str();
    while (!line.empty() && line.back() == '\n') {
      line.pop_back();
    }
    config_.storage->journal().append(rec.close_hours, line);
    maybe_publish_checkpoint();
  }
  if (link_ != nullptr) {
    link_->note_round(rec.round, rec.close_hours, rec.regret, rec.batch);
    link_->note_queue_depth(queue_.depth());
  }
  log.result.rounds.push_back(std::move(rec));
  return true;
}

void OnlineEngine::finalize(RunLog& log, double wall_seconds) {
  // Carry the partial final window into the totals.
  if (log.window.rounds() > 0) {
    log.result.windows.push_back(
        WindowSummary{log.result.rounds.back().round, log.window});
    log.result.total.merge(log.window);
  }
  refresh_counters();
  log.result.counters = counters_;
  log.result.queue = queue_.stats();
  log.result.wall_seconds = wall_seconds;
  if (config_.admission_buckets != nullptr) {
    log.result.throttled = config_.admission_buckets->throttled_total();
  }
  if (config_.storage != nullptr) {
    // Shutdown durability: a final snapshot generation plus a flushed
    // journal chunk and a synced WAL tail, so a clean stop restarts
    // without replaying anything.
    publish_checkpoint();
    config_.storage->journal().flush();
    config_.storage->wal().sync();
  }
}

EngineResult OnlineEngine::run() {
  MFCP_CHECK(!ran_, "OnlineEngine::run is single-shot per instance");
  ran_ = true;

  Stopwatch wall;
  RunLog log;
  obs::HeartbeatHandle pulse;
  if (config_.flight != nullptr) {
    pulse = config_.flight->register_heartbeat("engine_run");
  }
  // The round loop runs every stage on this thread (minus pool-offloaded
  // solves, which the workers tag themselves), so it is the profiler's
  // primary sampling target.
  obs::SamplingProfiler* profiler = obs::default_profiler();
  if (profiler != nullptr) {
    profiler->register_current_thread("engine");
  }
  // A recovered clock resumes ahead of the seeded stream's origin; shift
  // the stream so "t hours into the stream" means t hours after the
  // resume point. A fresh process has a zero base, so undisturbed runs
  // keep their byte-identical journals.
  const double stream_base = clock_hours_;

  for (;;) {
    pulse.beat();
    if (config_.stop_flag != nullptr &&
        config_.stop_flag->load(std::memory_order_relaxed)) {
      // Cooperative stop: no further arrivals, drain what is waiting.
      while (finish_round(RoundTrigger::kFlush, log)) {
      }
      break;
    }
    std::optional<double> next_arrival = arrivals_.peek_time();
    if (next_arrival.has_value()) {
      *next_arrival += stream_base;
    }
    std::optional<double> next_timeout;
    if (!queue_.empty()) {
      next_timeout = batcher_.timeout_at(queue_.oldest_arrival_time());
    }

    if (next_arrival.has_value() &&
        (!next_timeout.has_value() || *next_arrival <= *next_timeout)) {
      advance_clock(*next_arrival);
      auto arrival = arrivals_.next();
      arrival->time_hours += stream_base;
      arrival->deadline_hours += stream_base;
      ++counters_.arrivals;
      queue_.expire(clock_hours_);
      if (admission_throttled(*arrival)) {
        // Refused at the door: no queue entry, no trace, no round
        // trigger — the bucket table carries the count.
        flight(obs::FlightKind::kAdmission, arrival->id, 0, kShedThrottled);
      } else {
        maybe_begin_trace(*arrival);
        // WAL acceptance precedes the push: a capacity refusal then lands
        // as a rejected record after it, never an orphan terminal.
        wal_accepted(*arrival);
        const std::uint64_t id = arrival->id;
        const bool pushed = queue_.push(std::move(*arrival));
        if (pushed) {
          ++counters_.admitted;
        }
        flight(obs::FlightKind::kAdmission, id, pushed ? 1 : 0,
               pushed ? 0 : kShedCapacity);
        if (pushed) {
          flight(obs::FlightKind::kQueueTransition, id, kQueueQueued,
                 queue_.depth());
        }
        if (queue_.depth() >= batcher_.config().max_batch) {
          finish_round(RoundTrigger::kSize, log);
        }
      }
    } else if (next_timeout.has_value()) {
      advance_clock(*next_timeout);
      finish_round(RoundTrigger::kTimeout, log);
    } else if (!queue_.empty()) {
      // Stream exhausted with a partial batch waiting: drain immediately
      // instead of simulating out the timeout.
      finish_round(RoundTrigger::kFlush, log);
    } else {
      break;
    }
  }

  pulse.idle();
  if (profiler != nullptr) {
    profiler->unregister_current_thread();
  }
  finalize(log, wall.seconds());
  return std::move(log.result);
}

EngineResult OnlineEngine::serve(GatewayLink& link,
                                 const ServeConfig& serve_config) {
  MFCP_CHECK(!ran_, "OnlineEngine::run/serve is single-shot per instance");
  ran_ = true;
  MFCP_CHECK(serve_config.hours_per_second > 0.0,
             "serve needs a positive simulated-clock rate");

  link_ = &link;
  // Externally submitted tasks lost by the queue become terminal in the
  // status table through the loss callback installed at construction
  // (capacity → rejected, deadline → expired).
  // Retry-After prior until a real round cadence is observed: one
  // batching window of wall time per round.
  link.configure_drain(
      batcher_.config().max_batch,
      batcher_.config().max_wait_hours / serve_config.hours_per_second);
  // Retry-After conversions (simulated bucket deficits -> wall seconds)
  // need the serve clock rate.
  link.note_sim_rate(serve_config.hours_per_second);

  Stopwatch wall;
  RunLog log;
  obs::HeartbeatHandle pulse;
  if (config_.flight != nullptr) {
    pulse = config_.flight->register_heartbeat("engine_serve");
  }
  obs::SamplingProfiler* profiler = obs::default_profiler();
  if (profiler != nullptr) {
    profiler->register_current_thread("engine");
  }
  const double base_hours = clock_hours_;
  const auto sim_now = [&] {
    return base_hours + wall.seconds() * serve_config.hours_per_second;
  };
  bool stream_active = serve_config.synthetic_arrivals;

  const auto admit = [&](Arrival arrival) {
    ++counters_.arrivals;
    queue_.expire(clock_hours_);
    if (admission_throttled(arrival)) {
      // Synthetic stream only; external ids pass (see above).
      flight(obs::FlightKind::kAdmission, arrival.id, 0, kShedThrottled);
      return;
    }
    maybe_begin_trace(arrival);
    wal_accepted(arrival);  // synthetic only; see run()
    const std::uint64_t id = arrival.id;
    const bool pushed = queue_.push(std::move(arrival));
    if (pushed) {
      ++counters_.admitted;
    }
    flight(obs::FlightKind::kAdmission, id, pushed ? 1 : 0,
           pushed ? 0 : kShedCapacity);
    if (pushed) {
      flight(obs::FlightKind::kQueueTransition, id, kQueueQueued,
             queue_.depth());
    }
    if (queue_.depth() >= batcher_.config().max_batch) {
      finish_round(RoundTrigger::kSize, log);
    }
  };

  for (;;) {
    pulse.beat();
    const bool stopping =
        link.stop_requested() ||
        (config_.stop_flag != nullptr &&
         config_.stop_flag->load(std::memory_order_relaxed));
    if (stopping) {
      link.request_stop();  // idempotent; submit() starts rejecting
    }

    // Synthetic arrivals that are due on the simulated clock (a stopping
    // platform stops its own stream first). Stream times are relative to
    // the serve start (= the recovered clock), like run()'s stream_base.
    while (stream_active && !stopping) {
      const std::optional<double> t = arrivals_.peek_time();
      if (!t.has_value()) {
        stream_active = false;
        break;
      }
      if (*t + base_hours > sim_now()) {
        break;
      }
      advance_clock(*t + base_hours);
      Arrival arrival = *arrivals_.next();
      arrival.time_hours += base_hours;
      arrival.deadline_hours += base_hours;
      admit(std::move(arrival));
    }

    // External submissions, stamped at the current simulated time. Even
    // while stopping, anything accepted before the stop is still served.
    for (ExternalSubmission& sub : link.drain()) {
      advance_clock(std::max(sim_now(), clock_hours_));
      Arrival arrival;
      arrival.id = sub.id;
      arrival.time_hours = clock_hours_;
      arrival.deadline_hours = clock_hours_ + sub.deadline_hours;
      arrival.task = sub.task;
      admit(std::move(arrival));
    }

    // Timeout-triggered rounds.
    if (!queue_.empty()) {
      const double fire_at =
          batcher_.timeout_at(queue_.oldest_arrival_time());
      if (fire_at <= sim_now()) {
        advance_clock(std::max(fire_at, clock_hours_));
        finish_round(RoundTrigger::kTimeout, log);
      }
    }
    link.note_queue_depth(queue_.depth());
    link.note_sim_time(clock_hours_);

    if (stopping) {
      advance_clock(std::max(sim_now(), clock_hours_));
      while (finish_round(RoundTrigger::kFlush, log)) {
      }
      break;
    }

    // Sleep until the next scheduled simulated event; submissions (and
    // stop requests via their own poll bound) wake the loop early.
    double next_hours = std::numeric_limits<double>::infinity();
    if (!queue_.empty()) {
      next_hours = batcher_.timeout_at(queue_.oldest_arrival_time());
    }
    if (stream_active) {
      if (const std::optional<double> t = arrivals_.peek_time()) {
        next_hours = std::min(next_hours, *t + base_hours);
      }
    }
    int wait_ms = serve_config.poll_ms;
    if (std::isfinite(next_hours)) {
      const double ms = (next_hours - sim_now()) /
                        serve_config.hours_per_second * 1000.0;
      wait_ms = static_cast<int>(std::clamp(
          std::ceil(ms), 0.0, static_cast<double>(serve_config.poll_ms)));
    }
    if (wait_ms > 0) {
      // A parked wait is not a stall: the watchdog only times busy beats.
      pulse.idle();
      link.wait_for_event(std::chrono::milliseconds(wait_ms));
      pulse.beat();
    }
  }

  pulse.idle();
  if (profiler != nullptr) {
    profiler->unregister_current_thread();
  }
  finalize(log, wall.seconds());
  link.note_queue_depth(queue_.depth());
  link.note_sim_time(clock_hours_);
  link_ = nullptr;
  return std::move(log.result);
}

RoundRecord OnlineEngine::run_round(RoundTrigger trigger) {
  const std::size_t m = platform_.num_clusters();
  flight(obs::FlightKind::kRoundBegin, counters_.rounds, queue_.depth(),
         static_cast<std::uint64_t>(trigger));
  auto batch = queue_.pop_batch(batcher_.config().max_batch);
  MFCP_DCHECK(!batch.empty(), "round closed with no tasks");

  std::vector<sim::TaskDescriptor> tasks;
  tasks.reserve(batch.size());
  double max_wait = 0.0;
  for (const Arrival& a : batch) {
    tasks.push_back(a.task);
    const double wait = clock_hours_ - a.time_hours;
    max_wait = std::max(max_wait, wait);
    if (telemetry_.queue_wait_hours != nullptr) {
      telemetry_.queue_wait_hours->observe(wait);
    }
  }
  batcher_.record_round(trigger, tasks.size());
  flight(obs::FlightKind::kBatchFormed, counters_.rounds, tasks.size(),
         queue_.depth());

  // Task-lifecycle spans for sampled batch members. Sim-time endpoints
  // are deterministic; the per-stage wall durations below are diagnostic
  // and never exported to the deterministic journal.
  std::vector<char> traced;
  bool any_traced = false;
  double batch_open_hours = clock_hours_;
  if (config_.task_traces != nullptr) {
    traced.assign(batch.size(), 0);
    for (const Arrival& a : batch) {
      batch_open_hours = std::min(batch_open_hours, a.time_hours);
    }
    for (std::size_t j = 0; j < batch.size(); ++j) {
      if (!task_traced(batch[j].id)) {
        continue;
      }
      traced[j] = 1;
      any_traced = true;
      obs::TaskSpan wait_span;
      wait_span.name = "queue_wait";
      wait_span.start_hours = batch[j].time_hours;
      wait_span.end_hours = clock_hours_;
      config_.task_traces->append(batch[j].id, std::move(wait_span));
      obs::TaskSpan batch_span;
      batch_span.name = "batch";
      batch_span.start_hours = batch_open_hours;
      batch_span.end_hours = clock_hours_;
      config_.task_traces->append(batch[j].id, std::move(batch_span));
    }
  }

  Stopwatch predict_watch;
  obs::ScopedSpan embed_span(telemetry_.embed, "embed", config_.trace);
  obs::StageScope embed_stage(obs::EngineStage::kEmbed);
  const Matrix features = embedder_.embed_batch(tasks);
  embed_stage.close();
  embed_span.stop();

  matching::MatchingProblem truth;
  truth.times = platform_.true_times(tasks);
  truth.reliability = platform_.true_reliability(tasks);
  truth.gamma = config_.gamma;
  truth.speedup = config_.speedup;

  obs::ScopedSpan predict_span(telemetry_.predict, "predict", config_.trace);
  obs::StageScope predict_stage(obs::EngineStage::kPredict);
  const Matrix t_hat = predictor_.predict_time_matrix(features);
  const Matrix a_hat = predictor_.predict_reliability_matrix(features);
  predict_stage.close();
  predict_span.stop();
  const double predict_ns =
      any_traced ? predict_watch.seconds() * 1e9 : 0.0;
  const matching::MatchingProblem predicted =
      truth.with_metrics(t_hat, a_hat);

  // Deployment solve and the same-operator reference solve (paper Eq. 6)
  // are independent; with a pool they run concurrently. Attribution keeps
  // the full deploy traces (problem + relaxed solution + assignment) so
  // each pipeline stage can be priced separately afterwards.
  Stopwatch solve_watch;
  obs::ScopedSpan match_span(telemetry_.match, "match", config_.trace);
  obs::StageScope match_stage(obs::EngineStage::kMatch);
  matching::Assignment deployed;
  matching::Assignment reference;
  core::DeployTrace deployed_trace;
  core::DeployTrace reference_trace;
  if (config_.attribution) {
    if (pool_ != nullptr) {
      auto deployed_fut = pool_->submit([&] {
        // Pool workers carry their own TLS stage marker, so the solves
        // they run for the match stage tag their samples themselves.
        obs::StageScope stage(obs::EngineStage::kMatch);
        return core::deploy_matching_traced(predicted, config_.eval);
      });
      auto reference_fut = pool_->submit([&] {
        obs::StageScope stage(obs::EngineStage::kMatch);
        return core::deploy_matching_traced(truth, config_.eval);
      });
      deployed_trace = deployed_fut.get();
      reference_trace = reference_fut.get();
    } else {
      deployed_trace = core::deploy_matching_traced(predicted, config_.eval);
      reference_trace = core::deploy_matching_traced(truth, config_.eval);
    }
    deployed = deployed_trace.assignment;
    reference = reference_trace.assignment;
  } else if (pool_ != nullptr) {
    auto deployed_fut = pool_->submit([&] {
      obs::StageScope stage(obs::EngineStage::kMatch);
      return core::deploy_matching(predicted, config_.eval);
    });
    auto reference_fut = pool_->submit([&] {
      obs::StageScope stage(obs::EngineStage::kMatch);
      return core::deploy_matching(truth, config_.eval);
    });
    deployed = deployed_fut.get();
    reference = reference_fut.get();
  } else {
    deployed = core::deploy_matching(predicted, config_.eval);
    reference = core::deploy_matching(truth, config_.eval);
  }
  match_stage.close();
  match_span.stop();
  const double solve_seconds = solve_watch.seconds();
  if (config_.attribution) {
    // Only the traced solve exposes its iteration count.
    flight(obs::FlightKind::kSolverIters, counters_.rounds,
           deployed_trace.relaxed.iterations, tasks.size());
  }

  const core::MatchOutcome outcome =
      core::evaluate_assignment(truth, deployed, reference);

  // Per-task predict + match spans, now that assignments are known.
  if (any_traced) {
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      if (traced[j] == 0) {
        continue;
      }
      const auto ci = static_cast<std::size_t>(deployed[j]);
      obs::TaskSpan p;
      p.name = "predict";
      p.start_hours = clock_hours_;
      p.end_hours = clock_hours_;
      p.duration_ns = static_cast<std::uint64_t>(predict_ns);
      config_.task_traces->append(batch[j].id, std::move(p));
      obs::TaskSpan m_span;
      m_span.name = "match";
      m_span.start_hours = clock_hours_;
      m_span.end_hours = clock_hours_;
      m_span.duration_ns = static_cast<std::uint64_t>(solve_seconds * 1e9);
      m_span.value = t_hat(ci, j);  // predicted hours on the assignment
      m_span.detail = platform_.cluster(ci).name();
      config_.task_traces->append(batch[j].id, std::move(m_span));
    }
  }

  // Externally submitted tasks (serve mode) learn their assignment here.
  if (link_ != nullptr) {
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      if (batch[j].id >= kExternalIdBase) {
        const auto ci = static_cast<std::size_t>(deployed[j]);
        link_->table().mark_matched(batch[j].id, ci,
                                    platform_.cluster(ci).name(),
                                    t_hat(ci, j), counters_.rounds);
      }
    }
  }

  // Dispatch for real: sample success/failure on the assigned clusters.
  Stopwatch dispatch_watch;
  obs::ScopedSpan dispatch_span(telemetry_.dispatch, "dispatch",
                                config_.trace);
  obs::StageScope dispatch_stage(obs::EngineStage::kDispatch);
  const sim::ExecutionOutcome run = sim::execute_assignment(
      platform_, tasks, deployed, dispatch_rng_, /*max_attempts=*/2);
  dispatch_stage.close();
  dispatch_span.stop();
  const double dispatch_ns =
      any_traced ? dispatch_watch.seconds() * 1e9 : 0.0;
  std::size_t dispatch_ok = 0;
  for (const bool ok : run.succeeded) {
    dispatch_ok += ok ? 1 : 0;
  }

  // Feedback: observed runtimes on assigned clusters (bandit feedback),
  // plus occasional shadow profiles of the full cluster column.
  double error_sum = 0.0;
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    const auto ci = static_cast<std::size_t>(deployed[j]);
    const double observed =
        platform_.cluster(ci).measure_time(tasks[j], dispatch_rng_);
    // Robust log-ratio error (see drift_error): symmetric in over- vs
    // under-prediction and bounded for tiny predicted times, where the
    // earlier |t̂−obs|/max(t̂, ε) form was heavy-tailed.
    error_sum += drift_error(t_hat(ci, j), observed);

    Experience e;
    e.features.assign(features.row_span(j).begin(),
                      features.row_span(j).end());
    e.cluster = ci;
    e.observed_time = observed;
    e.observed_success = run.succeeded[j] ? 1.0 : 0.0;
    trainer_.record(std::move(e));

    if (link_ != nullptr && batch[j].id >= kExternalIdBase) {
      link_->table().mark_dispatched(batch[j].id, observed,
                                     run.succeeded[j]);
    }
    wal_terminal(batch[j].id, storage::WalRecordType::kDispatched);
    journal_task(batch[j].id, "dispatched");

    if (any_traced && traced[j] != 0) {
      obs::TaskSpan d;
      d.name = "dispatch";
      d.start_hours = clock_hours_;
      d.end_hours = clock_hours_;
      d.duration_ns = static_cast<std::uint64_t>(dispatch_ns);
      d.detail = run.succeeded[j] ? "ok" : "failed";
      config_.task_traces->append(batch[j].id, std::move(d));
      obs::TaskSpan f;
      f.name = "feedback";
      f.start_hours = clock_hours_;
      f.end_hours = clock_hours_;
      f.value = observed;  // the runtime the bandit loop learned from
      config_.task_traces->append(batch[j].id, std::move(f));
      // Terminal span: realized minus predicted makespan, the per-task
      // prediction error the chain's reader cares about post-dispatch.
      obs::TaskSpan done;
      done.name = "complete";
      done.start_hours = clock_hours_;
      done.end_hours = clock_hours_;
      done.value = observed - t_hat(ci, j);
      done.detail = run.succeeded[j] ? "ok" : "failed";
      config_.task_traces->append(batch[j].id, std::move(done));
      config_.task_traces->finish(batch[j].id, "dispatched");
    }

    if (config_.profile_probability > 0.0 &&
        dispatch_rng_.bernoulli(config_.profile_probability)) {
      for (std::size_t i = 0; i < m; ++i) {
        if (i == ci) {
          continue;
        }
        Experience probe;
        probe.features.assign(features.row_span(j).begin(),
                              features.row_span(j).end());
        probe.cluster = i;
        probe.observed_time =
            platform_.cluster(i).measure_time(tasks[j], dispatch_rng_);
        probe.observed_success =
            platform_.cluster(i).run_once(tasks[j], dispatch_rng_) ? 1.0
                                                                   : 0.0;
        trainer_.record(std::move(probe));
      }
    }
  }
  const double drift_stat =
      error_sum / static_cast<double>(tasks.size());

  bool retrained = false;
  if (config_.online_retraining) {
    retrained = trainer_.observe_round(drift_stat, predictor_);
    if (retrained) {
      flight(obs::FlightKind::kRetrain, counters_.rounds,
             trainer_.retrain_count(), 1);
    }
  }

  RoundRecord rec;
  rec.round = counters_.rounds;
  rec.close_hours = clock_hours_;
  rec.trigger = trigger;
  rec.batch = tasks.size();
  rec.queue_depth = queue_.depth();
  rec.dropped_total = queue_.stats().dropped_total();
  rec.max_wait_hours = max_wait;
  rec.regret = outcome.regret;
  rec.reliability = outcome.reliability;
  rec.utilization = outcome.utilization;
  rec.makespan = outcome.makespan;
  rec.drift_stat = drift_stat;
  rec.retrained = retrained;
  rec.retrain_total = trainer_.retrain_count();
  rec.solve_seconds = solve_seconds;
  rec.dispatch_ok = dispatch_ok;

  if (config_.attribution) {
    obs::ScopedSpan attr_span(telemetry_.attribute, "attribute",
                              config_.trace);
    obs::StageScope attr_stage(obs::EngineStage::kAttribute);
    core::AttributionConfig acfg;
    // Admission counterfactual: every arrival lost since the previous
    // round (capacity drops + deadline expiries), priced at its best-case
    // true runtime and normalized by this round's batch size so the term
    // is commensurable with the per-task regret gaps.
    const std::vector<Arrival> lost = queue_.take_recent_losses();
    if (!lost.empty()) {
      std::vector<sim::TaskDescriptor> lost_tasks;
      lost_tasks.reserve(lost.size());
      for (const Arrival& a : lost) {
        lost_tasks.push_back(a.task);
      }
      const Matrix lost_times = platform_.true_times(lost_tasks);
      double loss = 0.0;
      for (std::size_t j = 0; j < lost_tasks.size(); ++j) {
        double best = lost_times(0, j);
        for (std::size_t i = 1; i < m; ++i) {
          best = std::min(best, lost_times(i, j));
        }
        loss += best;
      }
      acfg.admission_loss = loss / static_cast<double>(tasks.size());
    }
    rec.attribution = core::attribute_regret(
        truth, deployed_trace, reference_trace, config_.eval, acfg);
    attr_span.stop();
    attribution_recorder_.record(rec.attribution);
  }

  ++counters_.rounds;
  counters_.retrains = trainer_.retrain_count();
  if (telemetry_.tasks_matched != nullptr) {
    telemetry_.tasks_matched->add(tasks.size());
    if (retrained) {
      telemetry_.retrains->add(1);
    }
    telemetry_.sim_time->set(clock_hours_);
  }
  flight(obs::FlightKind::kRoundEnd, rec.round, rec.batch,
         rec.batch - dispatch_ok);
  return rec;
}

void OnlineEngine::checkpoint(const std::string& path) {
  refresh_counters();
  save_checkpoint(path, predictor_, counters_);
}

void OnlineEngine::restore(const std::string& path) {
  counters_ = load_checkpoint(path, predictor_);
  clock_hours_ = counters_.sim_time_hours;
  restored_base_ = counters_;
  // rounds is the best available proxy for rounds observed by the
  // trainer — observe_round runs once per closed round when online
  // retraining is enabled — so periodic retrain schedules keep their
  // phase across a restore instead of restarting the count at zero.
  trainer_.restore_schedule(counters_.rounds, counters_.retrains);
}

RecoveryReport OnlineEngine::recover(GatewayLink* link) {
  MFCP_CHECK(config_.storage != nullptr,
             "recover() needs EngineConfig::storage");
  MFCP_CHECK(!ran_, "recover() must run before run()/serve()");
  storage::StorageManager& storage = *config_.storage;

  RecoveryReport report;
  report.truncated_bytes = storage.recovery_scan().truncated_bytes;

  // 1. Newest recoverable snapshot generation: predictor weights,
  //    counters, clock, and retrain schedule. A corrupt newest snapshot
  //    falls back through older generations inside load_latest; nothing
  //    loadable means a cold start with an intact WAL replay.
  const auto loaded =
      storage.checkpoints().load_latest([this](std::istream& is) {
        counters_ = load_checkpoint(is, predictor_);
        return true;
      });
  if (loaded.has_value()) {
    report.checkpoint_loaded = true;
    report.checkpoint_generation = loaded->generation;
    clock_hours_ = counters_.sim_time_hours;
    restored_base_ = counters_;
    trainer_.restore_schedule(counters_.rounds, counters_.retrains);
  }

  // 2. WAL suffix replay. Outstanding = acked but unterminal; external
  //    ids are re-queued (their submitters hold tickets), synthetic ids
  //    are skipped — the seeded arrival stream regenerates them exactly,
  //    so replaying would double-admit.
  const std::vector<storage::WalRecord> outstanding = storage.outstanding();
  std::uint64_t accepted_distinct = 0;
  {
    std::unordered_set<std::uint64_t> seen;
    for (const storage::WalRecord& rec : storage.recovery_scan().records) {
      if (rec.type == storage::WalRecordType::kAccepted &&
          seen.insert(rec.task_id).second) {
        ++accepted_distinct;
      }
    }
  }
  report.terminal = accepted_distinct - outstanding.size();

  // Resume the clock past every replayed accept stamp (it cannot move
  // backwards), applying any drift events scheduled up to that point —
  // the platform copy is rebuilt per process, so scheduled environment
  // changes replay deterministically alongside the tasks.
  double resume = clock_hours_;
  for (const storage::WalRecord& rec : outstanding) {
    if (rec.task_id >= kExternalIdBase) {
      resume = std::max(resume, rec.hours);
    }
  }
  advance_clock(resume);

  GatewayLink* const prev_link = link_;
  link_ = link;  // capacity refusals during replay mark the table
  const std::size_t drops_before = queue_.stats().dropped_capacity;
  for (const storage::WalRecord& rec : outstanding) {
    if (rec.task_id < kExternalIdBase) {
      continue;
    }
    if (link != nullptr) {
      link->table().restore_entry(rec.task_id, rec.hours);
    }
    // Re-append the acceptance to the fresh log (new sequence number,
    // original stamp and deadline) before the push, so the compacted WAL
    // still witnesses the task and a refusal below pairs with it.
    storage.wal().append(rec);
    Arrival arrival;
    arrival.id = rec.task_id;
    arrival.time_hours = rec.hours;
    arrival.deadline_hours = rec.deadline_hours;
    arrival.task = rec.task;
    ++counters_.arrivals;
    ++report.replayed;
    if (queue_.push(std::move(arrival))) {
      ++counters_.admitted;
    }
  }
  report.dropped = queue_.stats().dropped_capacity - drops_before;
  link_ = prev_link;

  storage.wal().sync();
  storage.compact_after_recovery();
  storage.note_recovered(report.replayed, report.terminal);
  if (link != nullptr) {
    link->note_recovery(report.replayed, report.terminal);
  }
  report.resume_hours = clock_hours_;
  MFCP_LOG(kInfo) << "storage recovery: "
                  << (report.checkpoint_loaded ? "snapshot generation " +
                          std::to_string(report.checkpoint_generation)
                                               : std::string("cold start"))
                  << ", replayed " << report.replayed
                  << " outstanding task(s) (" << report.dropped
                  << " dropped), " << report.terminal
                  << " already terminal, resume t=" << clock_hours_ << "h";
  return report;
}

}  // namespace mfcp::engine
