#include "engine/batcher.hpp"

#include "support/check.hpp"

namespace mfcp::engine {

std::string to_string(RoundTrigger trigger) {
  switch (trigger) {
    case RoundTrigger::kSize:
      return "size";
    case RoundTrigger::kTimeout:
      return "timeout";
    case RoundTrigger::kFlush:
      return "flush";
  }
  return "?";
}

MicroBatcher::MicroBatcher(const BatcherConfig& config) : config_(config) {
  MFCP_CHECK(config_.max_batch > 0, "batch size must be positive");
  MFCP_CHECK(config_.max_wait_hours > 0.0, "max wait must be positive");
}

bool MicroBatcher::should_fire(std::size_t queue_depth,
                               double oldest_arrival_time,
                               double now) const noexcept {
  if (queue_depth == 0) {
    return false;
  }
  return queue_depth >= config_.max_batch ||
         now >= timeout_at(oldest_arrival_time);
}

RoundTrigger MicroBatcher::classify(std::size_t queue_depth,
                                    double oldest_arrival_time,
                                    double now) const noexcept {
  if (queue_depth >= config_.max_batch) {
    return RoundTrigger::kSize;
  }
  if (now >= timeout_at(oldest_arrival_time)) {
    return RoundTrigger::kTimeout;
  }
  return RoundTrigger::kFlush;
}

}  // namespace mfcp::engine
