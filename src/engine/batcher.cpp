#include "engine/batcher.hpp"

#include "support/check.hpp"

namespace mfcp::engine {

std::string to_string(RoundTrigger trigger) {
  switch (trigger) {
    case RoundTrigger::kSize:
      return "size";
    case RoundTrigger::kTimeout:
      return "timeout";
    case RoundTrigger::kFlush:
      return "flush";
  }
  return "?";
}

MicroBatcher::MicroBatcher(const BatcherConfig& config) : config_(config) {
  MFCP_CHECK(config_.max_batch > 0, "batch size must be positive");
  MFCP_CHECK(config_.max_wait_hours > 0.0, "max wait must be positive");
}

void MicroBatcher::bind_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    telemetry_ = Telemetry{};
    return;
  }
  for (int t = 0; t < 3; ++t) {
    telemetry_.rounds[t] = &registry->counter(
        "mfcp_engine_rounds_total{trigger=\"" +
        to_string(static_cast<RoundTrigger>(t)) + "\"}");
  }
  // Batch sizes are small integers; unit-width buckets up to the common
  // configurations, then a coarse tail.
  static constexpr double kBounds[] = {1.0,  2.0,  3.0,  4.0,  6.0,
                                       8.0,  12.0, 16.0, 24.0, 32.0};
  telemetry_.batch_size =
      &registry->histogram("mfcp_engine_batch_size", kBounds);
}

void MicroBatcher::record_round(RoundTrigger trigger,
                                std::size_t batch_size) noexcept {
  if (telemetry_.batch_size == nullptr) {
    return;
  }
  telemetry_.rounds[static_cast<int>(trigger)]->add(1);
  telemetry_.batch_size->observe(static_cast<double>(batch_size));
}

bool MicroBatcher::should_fire(std::size_t queue_depth,
                               double oldest_arrival_time,
                               double now) const noexcept {
  if (queue_depth == 0) {
    return false;
  }
  return queue_depth >= config_.max_batch ||
         now >= timeout_at(oldest_arrival_time);
}

RoundTrigger MicroBatcher::classify(std::size_t queue_depth,
                                    double oldest_arrival_time,
                                    double now) const noexcept {
  if (queue_depth >= config_.max_batch) {
    return RoundTrigger::kSize;
  }
  if (now >= timeout_at(oldest_arrival_time)) {
    return RoundTrigger::kTimeout;
  }
  return RoundTrigger::kFlush;
}

}  // namespace mfcp::engine
