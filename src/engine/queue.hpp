// Bounded admission queue between the arrival stream and the micro-batcher.
//
// A live platform cannot buffer unboundedly: beyond some depth, either the
// newest submission is rejected at the door (backpressure to the client) or
// the oldest waiting job is evicted to make room (freshness wins). Both
// policies are explicit, and every drop is accounted — the engine exports
// drop rate as a first-class metric alongside regret.
//
// Jobs also expire: an arrival whose deadline passes while it waits is
// removed at round-formation time and counted separately from capacity
// drops, so queueing delay and undercapacity are distinguishable in the
// metrics CSV.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "engine/arrivals.hpp"
#include "obs/metrics.hpp"

namespace mfcp::engine {

enum class DropPolicy : int {
  kRejectNewest = 0,  // full queue bounces the incoming job
  kDropOldest = 1,    // full queue evicts the head to admit the newcomer
};

std::string to_string(DropPolicy policy);

struct QueueConfig {
  std::size_t capacity = 64;
  DropPolicy policy = DropPolicy::kRejectNewest;
};

/// Monotonic counters over the queue's lifetime.
struct QueueStats {
  std::size_t offered = 0;           // push attempts
  std::size_t admitted = 0;          // accepted pushes
  std::size_t dropped_capacity = 0;  // lost to the bounded buffer
  std::size_t expired = 0;           // lost to their own deadline
  std::size_t dispatched = 0;        // handed to a matching round

  [[nodiscard]] std::size_t dropped_total() const noexcept {
    return dropped_capacity + expired;
  }
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(const QueueConfig& config);

  /// Optional telemetry: mirrors the QueueStats counters and the live
  /// depth into `registry` (`mfcp_queue_*`). Null disables (default).
  void bind_metrics(obs::MetricsRegistry* registry);

  /// Admits (or drops, per policy) one arrival. Returns true if admitted.
  bool push(Arrival arrival);

  /// Removes and counts every waiting job whose deadline is before `now`.
  void expire(double now);

  /// Pops up to `n` jobs in FIFO order for a matching round.
  std::vector<Arrival> pop_batch(std::size_t n);

  /// Opt-in retention of lost arrivals (capacity drops and deadline
  /// expiries) so the engine's regret attribution can price their
  /// counterfactual. Off by default — with nobody collecting, stashing
  /// every loss of a long run would grow without bound.
  void set_loss_tracking(bool enabled);

  /// Arrivals lost since the last call, in loss order; clears the stash.
  /// Empty unless loss tracking is enabled.
  [[nodiscard]] std::vector<Arrival> take_recent_losses();

  /// Why an arrival was lost (see LossCallback).
  enum class Loss : int {
    kCapacity = 0,  // bounced or evicted by the bounded buffer
    kExpired = 1,   // deadline passed while waiting
  };

  /// Observer invoked synchronously on every loss, independent of the
  /// attribution stash above. The engine's serve mode uses it to mark
  /// externally submitted tasks rejected/expired in the status table.
  using LossCallback = std::function<void(const Arrival&, Loss)>;
  void set_loss_callback(LossCallback callback) {
    on_loss_ = std::move(callback);
  }

  [[nodiscard]] std::size_t depth() const noexcept { return queue_.size(); }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

  /// Arrival time of the head (oldest waiting) job. Requires !empty().
  [[nodiscard]] double oldest_arrival_time() const;

  [[nodiscard]] const QueueStats& stats() const noexcept { return stats_; }

 private:
  void record_depth() noexcept;

  /// Cached registry handles (null when telemetry is off).
  struct Telemetry {
    obs::Counter* offered = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* dropped_capacity = nullptr;
    obs::Counter* expired = nullptr;
    obs::Counter* dispatched = nullptr;
    obs::Gauge* depth = nullptr;
  };

  QueueConfig config_;
  std::deque<Arrival> queue_;
  QueueStats stats_;
  Telemetry telemetry_;
  bool track_losses_ = false;
  std::vector<Arrival> recent_losses_;
  LossCallback on_loss_;
};

}  // namespace mfcp::engine
