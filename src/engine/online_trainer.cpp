#include "engine/online_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "obs/span.hpp"
#include "support/check.hpp"
#include "support/log.hpp"

namespace mfcp::engine {

double drift_error(double predicted_time, double observed_time) noexcept {
  // ε floors both sides so a zero prediction or observation stays finite;
  // 0.05 simulated hours matches the floor the old relative-error form
  // used, keeping the statistic scales comparable around typical tasks.
  constexpr double kEps = 0.05;
  return std::abs(std::log((observed_time + kEps) /
                           (predicted_time + kEps)));
}

// ------------------------------------------------------------- replay --

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  MFCP_CHECK(capacity_ > 0, "replay buffer capacity must be positive");
  buffer_.reserve(capacity_);
}

void ReplayBuffer::add(Experience experience) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(std::move(experience));
    seq_.push_back(next_seq_++);
    return;
  }
  buffer_[next_] = std::move(experience);
  seq_[next_] = next_seq_++;
  next_ = (next_ + 1) % capacity_;
}

const Experience& ReplayBuffer::at(std::size_t i) const {
  MFCP_CHECK(i < buffer_.size(), "replay index out of range");
  return buffer_[i];
}

std::uint64_t ReplayBuffer::sequence(std::size_t i) const {
  MFCP_CHECK(i < seq_.size(), "replay index out of range");
  return seq_[i];
}

std::uint64_t ReplayBuffer::latest_sequence() const {
  MFCP_CHECK(next_seq_ > 0, "latest_sequence on empty replay buffer");
  return next_seq_ - 1;
}

std::vector<double> recency_weights(const ReplayBuffer& replay,
                                    const std::vector<std::size_t>& indices,
                                    double half_life) {
  std::vector<double> weights(indices.size(), 1.0);
  if (half_life <= 0.0 || indices.empty()) {
    return weights;
  }
  const auto newest = static_cast<double>(replay.latest_sequence());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const double age =
        newest - static_cast<double>(replay.sequence(indices[k]));
    weights[k] = std::exp2(-age / half_life);
  }
  return weights;
}

std::vector<std::size_t> ReplayBuffer::indices_for_cluster(
    std::size_t i) const {
  std::vector<std::size_t> idx;
  for (std::size_t k = 0; k < buffer_.size(); ++k) {
    if (buffer_[k].cluster == i) {
      idx.push_back(k);
    }
  }
  return idx;
}

// ----------------------------------------------------------- detector --

DriftDetector::DriftDetector(const DriftConfig& config) : config_(config) {
  MFCP_CHECK(config_.short_window > 0 && config_.long_window > 0,
             "drift windows must be positive");
  MFCP_CHECK(config_.ratio_threshold > 1.0,
             "drift ratio threshold must exceed 1");
}

std::string to_string(DriftDecision decision) {
  switch (decision) {
    case DriftDecision::kQuiet:
      return "quiet";
    case DriftDecision::kWarmup:
      return "warmup";
    case DriftDecision::kCooldown:
      return "cooldown";
    case DriftDecision::kTrip:
      return "trip";
  }
  return "?";
}

DriftDecision DriftDetector::evaluate(double error_stat) {
  history_.push_back(error_stat);
  const std::size_t keep = config_.short_window + config_.long_window;
  while (history_.size() > keep) {
    history_.pop_front();
  }
  if (cooldown_left_ > 0) {
    --cooldown_left_;
    return DriftDecision::kCooldown;
  }
  // Need a full short window plus at least half a baseline to compare.
  if (history_.size() < config_.short_window + config_.long_window / 2) {
    return DriftDecision::kWarmup;
  }
  const double baseline = std::max(baseline_mean(), config_.min_baseline);
  return short_mean() > config_.ratio_threshold * baseline
             ? DriftDecision::kTrip
             : DriftDecision::kQuiet;
}

void DriftDetector::acknowledge_retrain() {
  history_.clear();
  cooldown_left_ = config_.cooldown_rounds;
}

double DriftDetector::short_mean() const noexcept {
  if (history_.empty()) {
    return 0.0;
  }
  const std::size_t s = std::min(config_.short_window, history_.size());
  return std::accumulate(history_.end() - static_cast<std::ptrdiff_t>(s),
                         history_.end(), 0.0) /
         static_cast<double>(s);
}

double DriftDetector::baseline_mean() const noexcept {
  if (history_.size() <= config_.short_window) {
    return 0.0;
  }
  const std::size_t b = history_.size() - config_.short_window;
  return std::accumulate(history_.begin(),
                         history_.begin() + static_cast<std::ptrdiff_t>(b),
                         0.0) /
         static_cast<double>(b);
}

// ------------------------------------------------------------ trainer --

OnlineTrainer::OnlineTrainer(const OnlineTrainerConfig& config)
    : config_(config),
      replay_(config.replay_capacity),
      detector_(config.drift),
      rng_(config.seed) {
  MFCP_CHECK(config_.retrain_epochs > 0, "retrain burst needs epochs");
  MFCP_CHECK(config_.batch_size > 0, "batch size must be positive");
}

void OnlineTrainer::bind_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    telemetry_ = Telemetry{};
    return;
  }
  telemetry_.drift_stat = &registry->gauge("mfcp_engine_drift_stat");
  telemetry_.short_mean = &registry->gauge("mfcp_engine_drift_short_mean");
  telemetry_.baseline_mean =
      &registry->gauge("mfcp_engine_drift_baseline_mean");
  for (int d = 0; d < 4; ++d) {
    telemetry_.decisions[d] = &registry->counter(
        "mfcp_engine_drift_decisions_total{decision=\"" +
        to_string(static_cast<DriftDecision>(d)) + "\"}");
  }
  telemetry_.retrain_seconds = &registry->histogram(
      "mfcp_engine_stage_seconds{stage=\"retrain\"}",
      obs::default_time_bounds());
}

bool OnlineTrainer::observe_round(double error_stat,
                                  core::PlatformPredictor& predictor) {
  ++rounds_observed_;
  const DriftDecision decision = detector_.evaluate(error_stat);
  if (telemetry_.drift_stat != nullptr) {
    telemetry_.drift_stat->set(error_stat);
    telemetry_.short_mean->set(detector_.short_mean());
    telemetry_.baseline_mean->set(detector_.baseline_mean());
    telemetry_.decisions[static_cast<int>(decision)]->add(1);
  }
  // Periodic schedule: rounds_observed_ is monotone across restarts
  // (restore_schedule), so the cadence phase survives a checkpoint
  // round-trip — round 64 retrains whether or not the process died at 50.
  const bool scheduled = config_.retrain_every > 0 &&
                         rounds_observed_ % config_.retrain_every == 0;
  if (decision != DriftDecision::kTrip && !scheduled) {
    if (decision == DriftDecision::kCooldown) {
      MFCP_LOG(kDebug) << "drift stat " << error_stat
                       << " suppressed by retrain cooldown ("
                       << detector_.cooldown_remaining()
                       << " rounds remaining)";
    }
    return false;
  }
  if (decision == DriftDecision::kTrip) {
    MFCP_LOG(kInfo) << "drift detected (stat " << error_stat << ", short "
                    << detector_.short_mean() << " vs baseline "
                    << detector_.baseline_mean() << "), retraining on "
                    << replay_.size() << " experiences";
  } else {
    MFCP_LOG(kInfo) << "scheduled retrain at observed round "
                    << rounds_observed_ << " (every "
                    << config_.retrain_every << "), retraining on "
                    << replay_.size() << " experiences";
  }
  {
    obs::ScopedSpan span(telemetry_.retrain_seconds, "retrain");
    retrain(predictor);
  }
  detector_.acknowledge_retrain();
  return true;
}

void OnlineTrainer::retrain(core::PlatformPredictor& predictor) {
  ++retrains_;
  const std::size_t m = predictor.num_clusters();
  for (std::size_t i = 0; i < m; ++i) {
    const auto idx = replay_.indices_for_cluster(i);
    if (idx.size() < config_.min_cluster_samples) {
      continue;
    }
    auto& cluster = predictor.cluster(i);
    nn::Adam time_opt(cluster.time_model().parameters(),
                      config_.learning_rate);
    nn::Adam rel_opt(cluster.reliability_model().parameters(),
                     config_.learning_rate);
    const std::size_t d = replay_.at(idx[0]).features.size();

    // Recency-weighted sampling (half_life > 0): a cumulative weight
    // table turns one uniform draw into one weighted draw via binary
    // search. half_life == 0 keeps the original uniform_index path and
    // with it the exact historical RNG stream.
    const double half_life = config_.replay_recency_half_life;
    std::vector<double> cdf;
    if (half_life > 0.0) {
      const std::vector<double> weights =
          recency_weights(replay_, idx, half_life);
      cdf.resize(weights.size());
      double acc = 0.0;
      for (std::size_t k = 0; k < weights.size(); ++k) {
        acc += weights[k];
        cdf[k] = acc;
      }
    }
    const auto draw = [&]() -> std::size_t {
      if (cdf.empty()) {
        return idx[rng_.uniform_index(idx.size())];
      }
      const double u = rng_.uniform() * cdf.back();
      const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
      const std::size_t k = std::min(
          static_cast<std::size_t>(it - cdf.begin()), cdf.size() - 1);
      return idx[k];
    };

    for (std::size_t epoch = 0; epoch < config_.retrain_epochs; ++epoch) {
      // One minibatch per epoch, sampled with replacement from this
      // cluster's experiences — the burst is short, so epochs act as
      // SGD steps over the (small) replay population.
      const std::size_t b = std::min(config_.batch_size, idx.size());
      Matrix features(b, d);
      Matrix t_target(b, 1);
      Matrix a_target(b, 1);
      for (std::size_t k = 0; k < b; ++k) {
        const Experience& e = replay_.at(draw());
        MFCP_CHECK(e.features.size() == d,
                   "replay feature dimensions disagree");
        for (std::size_t c = 0; c < d; ++c) {
          features(k, c) = e.features[c];
        }
        t_target(k, 0) = e.observed_time;
        a_target(k, 0) = e.observed_success;
      }
      {
        nn::Variable in(features, /*requires_grad=*/false);
        auto loss = nn::mse(cluster.forward_time(in), t_target);
        time_opt.zero_grad();
        loss.backward();
        time_opt.step();
      }
      {
        nn::Variable in(features, /*requires_grad=*/false);
        auto loss = nn::mse(cluster.forward_reliability(in), a_target);
        rel_opt.zero_grad();
        loss.backward();
        rel_opt.step();
      }
    }
  }
}

}  // namespace mfcp::engine
