#include "engine/arrivals.hpp"

#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace mfcp::engine {

double ArrivalConfig::rate_at(double t) const noexcept {
  if (burst_period_hours <= 0.0 || burst_factor == 1.0) {
    return rate_per_hour;
  }
  const double phase = std::fmod(t, burst_period_hours);
  const bool bursting = phase < burst_duty * burst_period_hours;
  return bursting ? rate_per_hour * burst_factor : rate_per_hour;
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig& config)
    : config_(config), rng_(config.seed), tasks_(rng_.split()) {
  MFCP_CHECK(config_.rate_per_hour > 0.0, "arrival rate must be positive");
  MFCP_CHECK(config_.burst_factor > 0.0, "burst factor must be positive");
  MFCP_CHECK(config_.burst_duty > 0.0 && config_.burst_duty < 1.0,
             "burst duty must lie in (0, 1)");
  MFCP_CHECK(config_.deadline_hours > 0.0, "deadline must be positive");
  advance();
}

void ArrivalProcess::advance() {
  pending_.reset();
  if (generated_ >= config_.max_arrivals) {
    return;
  }
  // Piecewise-constant-rate Poisson via per-segment exponentials: draw an
  // exponential at the current segment's rate; if it crosses the next rate
  // boundary, jump to the boundary and redraw (exact by memorylessness).
  double t = clock_hours_;
  for (;;) {
    const double rate = config_.rate_at(t);
    const double u = rng_.uniform();
    const double dt = -std::log1p(-u) / rate;
    if (config_.burst_period_hours <= 0.0 || config_.burst_factor == 1.0) {
      t += dt;
      break;
    }
    const double period = config_.burst_period_hours;
    const double phase = std::fmod(t, period);
    const double boundary_phase = phase < config_.burst_duty * period
                                      ? config_.burst_duty * period
                                      : period;
    const double boundary = t - phase + boundary_phase;
    if (t + dt <= boundary) {
      t += dt;
      break;
    }
    // Clip to the boundary and redraw; when rounding collapses the
    // boundary onto t, nudge one ulp so the loop always makes progress.
    t = boundary > t
            ? boundary
            : std::nextafter(t, std::numeric_limits<double>::infinity());
  }
  clock_hours_ = t;

  Arrival a;
  a.id = generated_;
  a.time_hours = clock_hours_;
  a.deadline_hours = clock_hours_ + config_.deadline_hours;
  a.task = tasks_.sample();
  pending_ = std::move(a);
  ++generated_;
}

std::optional<Arrival> ArrivalProcess::next() {
  if (!pending_.has_value()) {
    return std::nullopt;
  }
  Arrival out = std::move(*pending_);
  advance();
  ++emitted_;
  return out;
}

std::optional<double> ArrivalProcess::peek_time() {
  if (!pending_.has_value()) {
    return std::nullopt;
  }
  return pending_->time_hours;
}

}  // namespace mfcp::engine
