// Engine checkpoint/restore: predictor weights plus engine counters.
//
// A long-running platform process must survive restarts without losing
// what the online trainer learned. The checkpoint is a single plain-text
// file (locale independent, like nn/serialize):
//   mfcp-engine-checkpoint 1
//   <counters: rounds arrivals admitted dropped_capacity expired
//              dispatched retrains sim_time_hours>
//   <num_clusters>
//   <2 * num_clusters mfcp-mlp blocks: time then reliability, per cluster>
// Doubles round-trip bit-exactly (max_digits10), so restored predictor
// weights are identical to the saved ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "mfcp/predictor.hpp"

namespace mfcp::engine {

/// Monotonic progress counters of an engine run.
struct EngineCounters {
  std::size_t rounds = 0;
  std::size_t arrivals = 0;
  std::size_t admitted = 0;
  std::size_t dropped_capacity = 0;
  std::size_t expired = 0;
  std::size_t dispatched = 0;
  std::size_t retrains = 0;
  double sim_time_hours = 0.0;

  bool operator==(const EngineCounters&) const = default;
};

void save_checkpoint(std::ostream& os, core::PlatformPredictor& predictor,
                     const EngineCounters& counters);
void save_checkpoint(const std::string& path,
                     core::PlatformPredictor& predictor,
                     const EngineCounters& counters);

/// Restores weights into a predictor with identical architecture and
/// returns the saved counters. Throws on format or shape mismatch.
EngineCounters load_checkpoint(std::istream& is,
                               core::PlatformPredictor& predictor);
EngineCounters load_checkpoint(const std::string& path,
                               core::PlatformPredictor& predictor);

}  // namespace mfcp::engine
