#include "engine/checkpoint.hpp"

#include <fstream>
#include <iomanip>

#include "nn/serialize.hpp"
#include "support/check.hpp"

namespace mfcp::engine {

void save_checkpoint(std::ostream& os, core::PlatformPredictor& predictor,
                     const EngineCounters& counters) {
  os << "mfcp-engine-checkpoint 1\n";
  os << counters.rounds << ' ' << counters.arrivals << ' '
     << counters.admitted << ' ' << counters.dropped_capacity << ' '
     << counters.expired << ' ' << counters.dispatched << ' '
     << counters.retrains << ' ' << std::setprecision(17)
     << counters.sim_time_hours << '\n';
  os << predictor.num_clusters() << '\n';
  for (std::size_t i = 0; i < predictor.num_clusters(); ++i) {
    nn::save_mlp(os, predictor.cluster(i).time_model());
    nn::save_mlp(os, predictor.cluster(i).reliability_model());
  }
}

void save_checkpoint(const std::string& path,
                     core::PlatformPredictor& predictor,
                     const EngineCounters& counters) {
  std::ofstream f(path);
  MFCP_CHECK(f.good(), "cannot open engine checkpoint for writing: " + path);
  save_checkpoint(f, predictor, counters);
}

EngineCounters load_checkpoint(std::istream& is,
                               core::PlatformPredictor& predictor) {
  std::string magic;
  int version = 0;
  MFCP_CHECK(static_cast<bool>(is >> magic >> version) &&
                 magic == "mfcp-engine-checkpoint" && version == 1,
             "not an mfcp-engine-checkpoint v1 file");
  EngineCounters counters;
  MFCP_CHECK(static_cast<bool>(
                 is >> counters.rounds >> counters.arrivals >>
                 counters.admitted >> counters.dropped_capacity >>
                 counters.expired >> counters.dispatched >>
                 counters.retrains >> counters.sim_time_hours),
             "corrupt engine checkpoint: missing counters");
  std::size_t clusters = 0;
  MFCP_CHECK(static_cast<bool>(is >> clusters) &&
                 clusters == predictor.num_clusters(),
             "engine checkpoint cluster count does not match predictor");
  for (std::size_t i = 0; i < clusters; ++i) {
    nn::load_mlp(is, predictor.cluster(i).time_model());
    nn::load_mlp(is, predictor.cluster(i).reliability_model());
  }
  return counters;
}

EngineCounters load_checkpoint(const std::string& path,
                               core::PlatformPredictor& predictor) {
  std::ifstream f(path);
  MFCP_CHECK(f.good(), "cannot open engine checkpoint for reading: " + path);
  return load_checkpoint(f, predictor);
}

}  // namespace mfcp::engine
