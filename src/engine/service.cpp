#include "engine/service.hpp"

#include <algorithm>
#include <cmath>

#include "control/token_bucket.hpp"
#include "obs/trace_store.hpp"
#include "storage/wal.hpp"
#include "support/check.hpp"

namespace mfcp::engine {

std::string to_string(TaskState state) {
  switch (state) {
    case TaskState::kQueued:
      return "queued";
    case TaskState::kMatched:
      return "matched";
    case TaskState::kDispatched:
      return "dispatched";
    case TaskState::kExpired:
      return "expired";
    case TaskState::kRejected:
      return "rejected";
  }
  return "?";
}

// -------------------------------------------------------- status table --

std::uint64_t TaskStatusTable::insert(double submit_hours) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_id_++;
  TaskStatus s;
  s.id = id;
  s.state = TaskState::kQueued;
  s.submit_hours = submit_hours;
  tasks_.emplace(id, std::move(s));
  ++counts_.submitted;
  ++counts_.queued;
  return id;
}

void TaskStatusTable::restore_entry(std::uint64_t id, double submit_hours) {
  std::lock_guard<std::mutex> lock(mutex_);
  MFCP_CHECK(id >= kExternalIdBase, "restored ids are external ids");
  TaskStatus s;
  s.id = id;
  s.state = TaskState::kQueued;
  s.submit_hours = submit_hours;
  if (!tasks_.emplace(id, std::move(s)).second) {
    return;  // duplicate replay; the resident entry wins
  }
  next_id_ = std::max(next_id_, id + 1);
  ++counts_.submitted;
  ++counts_.queued;
}

void TaskStatusTable::mark_matched(std::uint64_t id, std::size_t cluster,
                                   std::string cluster_name,
                                   double predicted_hours,
                                   std::uint64_t round) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tasks_.find(id);
  if (it == tasks_.end() || it->second.state != TaskState::kQueued) {
    return;  // unknown or already advanced; transitions are forward-only
  }
  it->second.state = TaskState::kMatched;
  it->second.cluster = cluster;
  it->second.cluster_name = std::move(cluster_name);
  it->second.predicted_hours = predicted_hours;
  it->second.round = round;
  --counts_.queued;
  ++counts_.matched;
}

void TaskStatusTable::note_terminal_locked(std::uint64_t id) {
  if (capacity_ == 0) {
    return;  // unbounded: no eviction bookkeeping at all
  }
  terminal_fifo_.push_back(id);
  while (tasks_.size() > capacity_ && !terminal_fifo_.empty()) {
    tasks_.erase(terminal_fifo_.front());
    terminal_fifo_.pop_front();
    ++evicted_;
  }
}

void TaskStatusTable::mark_dispatched(std::uint64_t id,
                                      double realized_hours,
                                      bool succeeded) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tasks_.find(id);
  if (it == tasks_.end() || it->second.state != TaskState::kMatched) {
    return;
  }
  it->second.state = TaskState::kDispatched;
  it->second.realized_hours = realized_hours;
  it->second.succeeded = succeeded;
  --counts_.matched;
  ++counts_.dispatched;
  note_terminal_locked(id);
}

void TaskStatusTable::mark_lost(std::uint64_t id, TaskState state) {
  MFCP_CHECK(state == TaskState::kExpired || state == TaskState::kRejected,
             "mark_lost takes a terminal loss state");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tasks_.find(id);
  if (it == tasks_.end() || it->second.state != TaskState::kQueued) {
    return;  // only waiting tasks can be lost
  }
  it->second.state = state;
  --counts_.queued;
  if (state == TaskState::kExpired) {
    ++counts_.expired;
  } else {
    ++counts_.rejected;
  }
  note_terminal_locked(id);
}

std::optional<TaskStatus> TaskStatusTable::get(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool TaskStatusTable::was_evicted(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Every issued id stays resident until evicted, so "issued but absent"
  // identifies eviction exactly — no tombstone set needed.
  return id >= kExternalIdBase && id < next_id_ && tasks_.count(id) == 0;
}

std::size_t TaskStatusTable::resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

std::uint64_t TaskStatusTable::evicted_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

TaskStatusTable::Counts TaskStatusTable::counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

// ------------------------------------------------------------ link ------

GatewayLink::GatewayLink(GatewayLinkConfig config)
    : config_(config), table_(config.status_capacity) {
  MFCP_CHECK(config_.max_pending > 0, "gateway inbox must be bounded > 0");
  MFCP_CHECK(config_.high_water > 0, "gateway high water must be positive");
  MFCP_CHECK(config_.default_deadline_hours > 0.0,
             "default deadline must be positive");
}

std::size_t GatewayLink::pressure() const {
  std::size_t inbox;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inbox = inbox_.size();
  }
  return inbox + queue_depth_.load(std::memory_order_relaxed);
}

double GatewayLink::retry_after_seconds(std::size_t pressure) const {
  // Pressure shed as a replenish problem, through the same honest formula
  // the token buckets use: the deficit is the backlog above high water,
  // and it drains at batch-per-round-cadence tasks per wall second.
  const std::size_t batch =
      std::max<std::size_t>(1, round_batch_.load(std::memory_order_relaxed));
  const std::size_t excess =
      pressure >= config_.high_water ? pressure - config_.high_water + 1 : 1;
  const double cadence = std::max(
      round_seconds_ewma_.load(std::memory_order_relaxed), 1e-3);
  const double drain_per_second = static_cast<double>(batch) / cadence;
  return control::replenish_seconds(static_cast<double>(excess),
                                    drain_per_second,
                                    config_.retry_after_floor_seconds);
}

SubmitTicket GatewayLink::submit(const sim::TaskDescriptor& task,
                                 double deadline_hours,
                                 std::string_view client) {
  SubmitTicket ticket;
  if (stop_requested()) {
    // Draining: the platform no longer accepts work. Pressure 0 keeps the
    // Retry-After at its floor — a restarted platform is ready at once.
    ticket.retry_after_seconds = config_.retry_after_floor_seconds;
    rejected_busy_.fetch_add(1, std::memory_order_relaxed);
    return ticket;
  }
  if (config_.buckets != nullptr) {
    const control::AdmitDecision decision = config_.buckets->try_admit(
        client, sim_time_hours_.load(std::memory_order_relaxed));
    if (!decision.admitted) {
      // Bucket deficit (simulated tokens) replenishing at the client's
      // share, converted to wall seconds through the serve clock rate.
      const double hps =
          sim_hours_per_second_.load(std::memory_order_relaxed);
      ticket.throttled = true;
      ticket.retry_after_seconds = control::replenish_seconds(
          1.0 - decision.tokens, decision.rate_per_hour * hps,
          config_.retry_after_floor_seconds);
      ticket.pressure = pressure();
      rejected_throttled_.fetch_add(1, std::memory_order_relaxed);
      return ticket;
    }
  }
  const double deadline =
      deadline_hours > 0.0 ? deadline_hours : config_.default_deadline_hours;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t depth =
        inbox_.size() + queue_depth_.load(std::memory_order_relaxed);
    ticket.pressure = depth;
    if (depth >= config_.high_water || inbox_.size() >= config_.max_pending) {
      ticket.retry_after_seconds = retry_after_seconds(depth);
      rejected_busy_.fetch_add(1, std::memory_order_relaxed);
      return ticket;
    }
    ticket.accepted = true;
    ticket.id =
        table_.insert(sim_time_hours_.load(std::memory_order_relaxed));
    inbox_.push_back(ExternalSubmission{ticket.id, task, deadline});
  }
  // Durability point: the acceptance is logged before the ticket (and so
  // the HTTP 200) leaves this function. The WAL serializes appends under
  // its own lock, so the inbox lock above stays short. Terminal records
  // for the same id may land first (the engine can drain and finish the
  // task concurrently) — replay matches by id, not order.
  if (config_.wal != nullptr) {
    const double now = sim_time_hours_.load(std::memory_order_relaxed);
    storage::WalRecord rec;
    rec.type = storage::WalRecordType::kAccepted;
    rec.task_id = ticket.id;
    rec.hours = now;
    rec.deadline_hours = now + deadline;
    rec.task = task;
    config_.wal->append(rec);
  }
  // Trace identity is minted outside the inbox lock: deterministic in
  // (id, salt), so the engine recomputes the same decision on its side.
  ticket.trace_id = obs::mint_trace_id(ticket.id, config_.trace_salt);
  ticket.trace_sampled =
      obs::trace_sampled(ticket.trace_id, config_.trace_sample_rate);
  if (ticket.trace_sampled && config_.traces != nullptr) {
    const double now = sim_time_hours_.load(std::memory_order_relaxed);
    config_.traces->begin(ticket.id, ticket.trace_id, now);
    obs::TaskSpan span;
    span.name = "submit";
    span.start_hours = now;
    span.end_hours = now;
    config_.traces->append(ticket.id, std::move(span));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  ready_.notify_one();
  return ticket;
}

std::vector<ExternalSubmission> GatewayLink::drain() {
  std::vector<ExternalSubmission> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(inbox_.size());
  while (!inbox_.empty()) {
    out.push_back(std::move(inbox_.front()));
    inbox_.pop_front();
  }
  return out;
}

bool GatewayLink::wait_for_event(std::chrono::milliseconds wait) {
  std::unique_lock<std::mutex> lock(mutex_);
  return ready_.wait_for(lock, wait, [this] {
    return !inbox_.empty() || stop_.load(std::memory_order_relaxed);
  });
}

void GatewayLink::note_round(std::uint64_t round, double close_hours,
                             double regret, std::size_t batch) {
  rounds_.store(round + 1, std::memory_order_relaxed);
  last_round_close_hours_.store(close_hours, std::memory_order_relaxed);
  tasks_matched_.fetch_add(batch, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cumulative_regret_.store(
        cumulative_regret_.load(std::memory_order_relaxed) + regret,
        std::memory_order_relaxed);
    const auto now = std::chrono::steady_clock::now();
    if (saw_round_) {
      const double dt =
          std::chrono::duration<double>(now - last_round_wall_).count();
      const double prev = round_seconds_ewma_.load(std::memory_order_relaxed);
      round_seconds_ewma_.store(prev == 0.0 ? dt : 0.8 * prev + 0.2 * dt,
                                std::memory_order_relaxed);
    }
    last_round_wall_ = now;
    saw_round_ = true;
  }
}

void GatewayLink::configure_drain(std::size_t round_batch,
                                  double expected_round_seconds) {
  round_batch_.store(std::max<std::size_t>(1, round_batch),
                     std::memory_order_relaxed);
  if (round_seconds_ewma_.load(std::memory_order_relaxed) == 0.0) {
    round_seconds_ewma_.store(expected_round_seconds,
                              std::memory_order_relaxed);
  }
}

ServiceStats GatewayLink::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.inbox_depth = inbox_.size();
  }
  s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected_busy = rejected_busy_.load(std::memory_order_relaxed);
  s.rejected_throttled =
      rejected_throttled_.load(std::memory_order_relaxed);
  s.rounds = rounds_.load(std::memory_order_relaxed);
  s.tasks_matched = tasks_matched_.load(std::memory_order_relaxed);
  s.sim_time_hours = sim_time_hours_.load(std::memory_order_relaxed);
  s.last_round_close_hours =
      last_round_close_hours_.load(std::memory_order_relaxed);
  s.round_seconds_ewma =
      round_seconds_ewma_.load(std::memory_order_relaxed);
  s.cumulative_regret = cumulative_regret_.load(std::memory_order_relaxed);
  s.draining = stop_requested();
  s.recovered_tasks = recovered_tasks_.load(std::memory_order_relaxed);
  s.recovered_terminal =
      recovered_terminal_.load(std::memory_order_relaxed);
  s.tasks = table_.counts();
  return s;
}

}  // namespace mfcp::engine
