// Drift-aware online retraining for the platform predictors.
//
// Deployment feedback is partial: after a round runs, the engine observes
// the execution time and success of each task ONLY on the cluster it was
// assigned to (plus occasional full-row shadow profiles, see engine.hpp).
// Those observations land in a bounded ReplayBuffer — a ring, so recent
// experience gradually displaces stale pre-drift samples.
//
// Retraining is gated by a DriftDetector rather than run continuously:
// fine-tuning on every round wastes compute in a stationary environment
// and slowly erodes the decision-focused (MFCP) weights toward plain MSE.
// The detector compares a short rolling window of per-round prediction
// error against a longer baseline window; when the ratio trips, the
// OnlineTrainer runs a burst of MSE fine-tuning over the replay buffer
// (the standard "reactive retraining on detected drift" recipe, cf.
// Predict-and-Critic's motivation in PAPERS.md).
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "mfcp/predictor.hpp"
#include "obs/metrics.hpp"

namespace mfcp::engine {

/// One observed (z, cluster, t, success) outcome from a dispatched round.
struct Experience {
  std::vector<double> features;  // task embedding z
  std::size_t cluster = 0;       // where it ran
  double observed_time = 0.0;    // measured wall hours (noisy)
  double observed_success = 1.0; // 1 = first attempt succeeded, else 0
};

/// Per-task prediction-error term of the drift statistic: the robust
/// log-ratio |log((obs + ε) / (t̂ + ε))|. Symmetric in over- vs
/// under-prediction on the log scale, and — unlike the earlier relative
/// error |t̂ − obs| / max(t̂, ε), which is heavy-tailed when t̂ is tiny —
/// bounded by |log(ε) − log(obs + ε)| however small the prediction gets.
/// A k× hardware slowdown contributes ≈ log k regardless of task size.
[[nodiscard]] double drift_error(double predicted_time,
                                 double observed_time) noexcept;

/// Fixed-capacity ring buffer of experiences (oldest overwritten first).
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void add(Experience experience);

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const Experience& at(std::size_t i) const;

  /// Monotonic insertion sequence number of slot `i` (0 for the first
  /// experience ever added). Recency weighting keys off this rather than
  /// the slot index, because the ring reorders slots once it wraps.
  [[nodiscard]] std::uint64_t sequence(std::size_t i) const;

  /// Sequence number of the most recently added experience. Requires
  /// size() > 0.
  [[nodiscard]] std::uint64_t latest_sequence() const;

  /// Indices of the stored experiences that ran on cluster `i`.
  [[nodiscard]] std::vector<std::size_t> indices_for_cluster(
      std::size_t i) const;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  // ring write cursor once full
  std::uint64_t next_seq_ = 0;
  std::vector<Experience> buffer_;
  std::vector<std::uint64_t> seq_;  // parallel to buffer_
};

/// Unnormalized recency weights for the experiences at `indices`: an
/// experience `a` insertions older than the buffer's newest gets weight
/// 2^(-a / half_life). half_life <= 0 returns all-ones (uniform). Pure
/// and deterministic — exposed for unit testing the sampling bias.
[[nodiscard]] std::vector<double> recency_weights(
    const ReplayBuffer& replay, const std::vector<std::size_t>& indices,
    double half_life);

struct DriftConfig {
  /// Rounds in the "recent" window whose mean error is tested.
  std::size_t short_window = 6;
  /// Rounds of history (beyond the short window) forming the baseline.
  std::size_t long_window = 24;
  /// Trip when short mean > ratio_threshold * baseline mean. Calibrated
  /// for the log-ratio drift_error: a k× slowdown on a fraction f of the
  /// batch lifts the short mean by only f·log k (the old relative-error
  /// statistic inflated it by f·(k−1)), so trip ratios sit much closer
  /// to 1 than they would on the linear scale.
  double ratio_threshold = 1.3;
  /// Baseline floor: protects against spurious trips when the baseline
  /// error is tiny (a well-calibrated predictor in a quiet environment).
  double min_baseline = 0.05;
  /// Rounds to wait after a retrain before the detector may trip again
  /// (the replay buffer needs fresh post-retrain evidence).
  std::size_t cooldown_rounds = 8;
};

/// Why a round's statistic did or did not trigger a retrain — the
/// telemetry-facing refinement of the boolean observe() result.
enum class DriftDecision : int {
  kQuiet = 0,     // short-window mean below the trip threshold
  kWarmup = 1,    // not enough history for a meaningful baseline yet
  kCooldown = 2,  // would-be evaluation suppressed post-retrain
  kTrip = 3,      // drift detected; retrain now
};

std::string to_string(DriftDecision decision);

/// Windowed mean-ratio drift test over a per-round error statistic.
class DriftDetector {
 public:
  explicit DriftDetector(const DriftConfig& config);

  /// Feeds one round's error statistic; returns the full decision.
  DriftDecision evaluate(double error_stat);

  /// Feeds one round's error statistic; returns true when drift trips.
  bool observe(double error_stat) {
    return evaluate(error_stat) == DriftDecision::kTrip;
  }

  /// Called after a retrain: clears history (the predictor changed, old
  /// errors no longer describe it) and starts the cooldown.
  void acknowledge_retrain();

  [[nodiscard]] double short_mean() const noexcept;
  [[nodiscard]] double baseline_mean() const noexcept;
  [[nodiscard]] std::size_t cooldown_remaining() const noexcept {
    return cooldown_left_;
  }

 private:
  DriftConfig config_;
  std::deque<double> history_;  // newest at the back
  std::size_t cooldown_left_ = 0;
};

struct OnlineTrainerConfig {
  std::size_t replay_capacity = 512;
  /// Recency half-life for replay sampling, in insertions: when > 0, a
  /// retrain minibatch draws experience `a` insertions old with weight
  /// 2^(-a / half_life), so post-drift evidence dominates the burst while
  /// the pre-drift tail still regularizes it. 0 (the default) keeps the
  /// original uniform-with-replacement sampling — bit-for-bit, including
  /// the RNG stream.
  double replay_recency_half_life = 0.0;
  /// Fine-tune burst length (epochs over the replay buffer).
  std::size_t retrain_epochs = 40;
  std::size_t batch_size = 32;
  double learning_rate = 5e-3;
  /// Clusters with fewer stored experiences than this are skipped by a
  /// burst (too little signal to move their predictors responsibly).
  std::size_t min_cluster_samples = 8;
  /// Periodic retrain schedule: when > 0, a fine-tune burst also runs
  /// every N observed rounds, independent of the drift detector (the
  /// --retrain-every flag). Scheduled bursts reset the detector the same
  /// way tripped ones do — the predictor changed either way. 0 keeps
  /// retraining purely drift-triggered.
  std::size_t retrain_every = 0;
  DriftConfig drift;
  std::uint64_t seed = 0x0e11e7ULL;
};

/// Owns the replay buffer and drift detector; fine-tunes a
/// core::PlatformPredictor in place when drift trips.
class OnlineTrainer {
 public:
  explicit OnlineTrainer(const OnlineTrainerConfig& config);

  /// Optional telemetry: records every drift decision (with the statistic
  /// value that triggered or suppressed it) and retrain-burst wall time
  /// into `registry`. Null (the default) disables the instrumentation.
  void bind_metrics(obs::MetricsRegistry* registry);

  void record(Experience experience) { replay_.add(std::move(experience)); }

  /// Feeds the round's error statistic and, when the detector trips,
  /// runs one fine-tune burst. Returns true iff a retrain happened.
  bool observe_round(double error_stat, core::PlatformPredictor& predictor);

  /// Unconditional fine-tune burst over the replay buffer.
  void retrain(core::PlatformPredictor& predictor);

  [[nodiscard]] const ReplayBuffer& replay() const noexcept {
    return replay_;
  }
  [[nodiscard]] const DriftDetector& detector() const noexcept {
    return detector_;
  }
  [[nodiscard]] std::size_t retrain_count() const noexcept {
    return retrains_;
  }
  [[nodiscard]] std::size_t rounds_observed() const noexcept {
    return rounds_observed_;
  }

  /// Restores the schedule position after a checkpoint restore: the
  /// periodic retrain_every cadence and the retrain counter continue
  /// from where the previous incarnation stopped, so a restart never
  /// resets a schedule (or double-counts retrain_total in the journal).
  void restore_schedule(std::size_t rounds_observed,
                        std::size_t retrains) noexcept {
    rounds_observed_ = rounds_observed;
    retrains_ = retrains;
  }

 private:
  /// Cached registry handles (null when telemetry is off).
  struct Telemetry {
    obs::Gauge* drift_stat = nullptr;
    obs::Gauge* short_mean = nullptr;
    obs::Gauge* baseline_mean = nullptr;
    obs::Counter* decisions[4] = {nullptr, nullptr, nullptr, nullptr};
    obs::Histogram* retrain_seconds = nullptr;
  };

  OnlineTrainerConfig config_;
  ReplayBuffer replay_;
  DriftDetector detector_;
  Rng rng_;
  std::size_t retrains_ = 0;
  std::size_t rounds_observed_ = 0;
  Telemetry telemetry_;
};

}  // namespace mfcp::engine
