// Drift-aware online retraining for the platform predictors.
//
// Deployment feedback is partial: after a round runs, the engine observes
// the execution time and success of each task ONLY on the cluster it was
// assigned to (plus occasional full-row shadow profiles, see engine.hpp).
// Those observations land in a bounded ReplayBuffer — a ring, so recent
// experience gradually displaces stale pre-drift samples.
//
// Retraining is gated by a DriftDetector rather than run continuously:
// fine-tuning on every round wastes compute in a stationary environment
// and slowly erodes the decision-focused (MFCP) weights toward plain MSE.
// The detector compares a short rolling window of per-round prediction
// error against a longer baseline window; when the ratio trips, the
// OnlineTrainer runs a burst of MSE fine-tuning over the replay buffer
// (the standard "reactive retraining on detected drift" recipe, cf.
// Predict-and-Critic's motivation in PAPERS.md).
#pragma once

#include <deque>
#include <vector>

#include "mfcp/predictor.hpp"

namespace mfcp::engine {

/// One observed (z, cluster, t, success) outcome from a dispatched round.
struct Experience {
  std::vector<double> features;  // task embedding z
  std::size_t cluster = 0;       // where it ran
  double observed_time = 0.0;    // measured wall hours (noisy)
  double observed_success = 1.0; // 1 = first attempt succeeded, else 0
};

/// Fixed-capacity ring buffer of experiences (oldest overwritten first).
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void add(Experience experience);

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const Experience& at(std::size_t i) const;

  /// Indices of the stored experiences that ran on cluster `i`.
  [[nodiscard]] std::vector<std::size_t> indices_for_cluster(
      std::size_t i) const;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  // ring write cursor once full
  std::vector<Experience> buffer_;
};

struct DriftConfig {
  /// Rounds in the "recent" window whose mean error is tested.
  std::size_t short_window = 6;
  /// Rounds of history (beyond the short window) forming the baseline.
  std::size_t long_window = 24;
  /// Trip when short mean > ratio_threshold * baseline mean.
  double ratio_threshold = 1.6;
  /// Baseline floor: protects against spurious trips when the baseline
  /// error is tiny (a well-calibrated predictor in a quiet environment).
  double min_baseline = 0.05;
  /// Rounds to wait after a retrain before the detector may trip again
  /// (the replay buffer needs fresh post-retrain evidence).
  std::size_t cooldown_rounds = 8;
};

/// Windowed mean-ratio drift test over a per-round error statistic.
class DriftDetector {
 public:
  explicit DriftDetector(const DriftConfig& config);

  /// Feeds one round's error statistic; returns true when drift trips.
  bool observe(double error_stat);

  /// Called after a retrain: clears history (the predictor changed, old
  /// errors no longer describe it) and starts the cooldown.
  void acknowledge_retrain();

  [[nodiscard]] double short_mean() const noexcept;
  [[nodiscard]] double baseline_mean() const noexcept;

 private:
  DriftConfig config_;
  std::deque<double> history_;  // newest at the back
  std::size_t cooldown_left_ = 0;
};

struct OnlineTrainerConfig {
  std::size_t replay_capacity = 512;
  /// Fine-tune burst length (epochs over the replay buffer).
  std::size_t retrain_epochs = 40;
  std::size_t batch_size = 32;
  double learning_rate = 5e-3;
  /// Clusters with fewer stored experiences than this are skipped by a
  /// burst (too little signal to move their predictors responsibly).
  std::size_t min_cluster_samples = 8;
  DriftConfig drift;
  std::uint64_t seed = 0x0e11e7ULL;
};

/// Owns the replay buffer and drift detector; fine-tunes a
/// core::PlatformPredictor in place when drift trips.
class OnlineTrainer {
 public:
  explicit OnlineTrainer(const OnlineTrainerConfig& config);

  void record(Experience experience) { replay_.add(std::move(experience)); }

  /// Feeds the round's error statistic and, when the detector trips,
  /// runs one fine-tune burst. Returns true iff a retrain happened.
  bool observe_round(double error_stat, core::PlatformPredictor& predictor);

  /// Unconditional fine-tune burst over the replay buffer.
  void retrain(core::PlatformPredictor& predictor);

  [[nodiscard]] const ReplayBuffer& replay() const noexcept {
    return replay_;
  }
  [[nodiscard]] const DriftDetector& detector() const noexcept {
    return detector_;
  }
  [[nodiscard]] std::size_t retrain_count() const noexcept {
    return retrains_;
  }

 private:
  OnlineTrainerConfig config_;
  ReplayBuffer replay_;
  DriftDetector detector_;
  Rng rng_;
  std::size_t retrains_ = 0;
};

}  // namespace mfcp::engine
