// External-submission service layer: the thread-safe bridge between the
// platform gateway's HTTP workers and the engine's single-threaded round
// loop.
//
//   HTTP worker ── GatewayLink::submit() ──> bounded inbox ──┐
//                                                            ▼
//   engine serve loop ── drain() ──> admission queue ──> rounds
//                  │
//                  └──> TaskStatusTable (queued → matched → dispatched,
//                       or expired / rejected) read by GET /task/<id>
//
// Contract: HTTP workers only ever touch the GatewayLink (mutex-guarded
// inbox + status table + relaxed-atomic pressure hints); the engine
// drains submissions between events and writes status transitions as
// rounds close. Status states only move forward, so a reader polling
// /task/<id> can never observe a regression — the live-socket test
// asserts exactly that.
//
// Backpressure: submit() rejects once inbox depth + the engine's queue-
// depth hint reaches high_water, returning a Retry-After derived from
// queue pressure (how many rounds must close to drain the excess, times
// the engine's round-cadence hint). This is the 429 path of POST /submit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/task.hpp"

namespace mfcp::obs {
class TraceStore;
}
namespace mfcp::control {
class TokenBucketTable;
}
namespace mfcp::storage {
class TaskWal;
}

namespace mfcp::engine {

/// External arrival ids live far above the synthetic stream's dense
/// 0-based ids, so the two sources can never collide in the queue.
inline constexpr std::uint64_t kExternalIdBase = 1ULL << 40;

/// Lifecycle of one externally submitted task. States only move forward
/// (queued < matched < dispatched; expired/rejected are terminal).
enum class TaskState : int {
  kQueued = 0,     // admitted, waiting in the admission queue
  kMatched = 1,    // assigned a cluster by a matching round
  kDispatched = 2, // executed; realized time and outcome known
  kExpired = 3,    // deadline passed while waiting
  kRejected = 4,   // dropped by the bounded queue after admission
};

std::string to_string(TaskState state);

/// Status record returned by GET /task/<id>.
struct TaskStatus {
  std::uint64_t id = 0;
  TaskState state = TaskState::kQueued;
  double submit_hours = 0.0;     // simulated submission time
  std::size_t cluster = 0;       // valid from kMatched
  std::string cluster_name;      // valid from kMatched
  double predicted_hours = 0.0;  // T̂ on the assigned cluster (kMatched)
  double realized_hours = 0.0;   // observed runtime (kDispatched)
  bool succeeded = false;        // first-attempt success (kDispatched)
  std::uint64_t round = 0;       // round that matched it (kMatched)
};

/// Thread-safe id-keyed status store with monotonic state transitions.
///
/// Bounded: past `capacity` resident entries, *terminal* tasks
/// (dispatched/expired/rejected) are evicted FIFO — in the order they
/// reached a terminal state — so a long-lived service holds at most the
/// cap plus every still-live task. Live (queued/matched) entries are
/// never evicted; the forward-only contract is preserved because an
/// evicted id can only re-surface as "gone" (was_evicted), never as an
/// earlier state. capacity == 0 means unbounded (tests, batch runs).
class TaskStatusTable {
 public:
  explicit TaskStatusTable(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Registers a new task, assigning the next external id.
  std::uint64_t insert(double submit_hours);

  /// Recovery path: re-registers a task under the id it was issued by a
  /// previous incarnation (WAL replay), advancing the id allocator past
  /// it so new submissions never collide with replayed ones. Counted as
  /// submitted + queued, exactly like insert().
  void restore_entry(std::uint64_t id, double submit_hours);

  void mark_matched(std::uint64_t id, std::size_t cluster,
                    std::string cluster_name, double predicted_hours,
                    std::uint64_t round);
  void mark_dispatched(std::uint64_t id, double realized_hours,
                       bool succeeded);
  /// Terminal loss: `state` must be kExpired or kRejected.
  void mark_lost(std::uint64_t id, TaskState state);

  [[nodiscard]] std::optional<TaskStatus> get(std::uint64_t id) const;

  /// True for ids this table once held and has since evicted (the GET
  /// /task/<id> 410 path). False for live ids and never-issued ids.
  [[nodiscard]] bool was_evicted(std::uint64_t id) const;

  [[nodiscard]] std::size_t resident() const;
  [[nodiscard]] std::uint64_t evicted_total() const;

  /// Point-in-time count of tasks in each state.
  struct Counts {
    std::uint64_t submitted = 0;
    std::uint64_t queued = 0;
    std::uint64_t matched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t expired = 0;
    std::uint64_t rejected = 0;
  };
  [[nodiscard]] Counts counts() const;

 private:
  /// Records `id` as terminal and evicts past capacity. Caller holds
  /// mutex_.
  void note_terminal_locked(std::uint64_t id);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, TaskStatus> tasks_;
  std::deque<std::uint64_t> terminal_fifo_;  // eviction order
  std::uint64_t next_id_ = kExternalIdBase;
  std::uint64_t evicted_ = 0;
  Counts counts_;
};

/// Outcome of one POST /submit as decided by the link.
struct SubmitTicket {
  bool accepted = false;
  std::uint64_t id = 0;                // valid when accepted
  double retry_after_seconds = 0.0;    // valid when rejected
  std::size_t pressure = 0;            // inbox + queue depth at decision
  bool throttled = false;              // rejected by the client's bucket
  std::uint64_t trace_id = 0;          // minted when accepted (always set)
  bool trace_sampled = false;          // whether /trace/<id> will resolve
};

/// One accepted submission travelling from the inbox to the engine.
struct ExternalSubmission {
  std::uint64_t id = 0;
  sim::TaskDescriptor task;
  double deadline_hours = 0.0;  // patience, relative to admission time
};

struct GatewayLinkConfig {
  /// Inbox bound: submissions waiting for the engine to drain them.
  std::size_t max_pending = 256;
  /// Reject new submissions once inbox + engine queue depth reaches this.
  std::size_t high_water = 48;
  /// Deadline applied when a submission does not name one.
  double default_deadline_hours = 2.0;
  /// Retry-After never reports below this (seconds).
  double retry_after_floor_seconds = 1.0;
  /// Status-table bound: terminal entries past this are evicted FIFO and
  /// GET /task/<id> answers 410 for them. 0 = unbounded.
  std::size_t status_capacity = 65536;

  /// Task-lifecycle tracing (null store disables it entirely). Sampling
  /// is deterministic in (task id, trace_salt, trace_sample_rate); the
  /// engine recomputes the same decision for its side of the chain.
  obs::TraceStore* traces = nullptr;
  double trace_sample_rate = 0.0;
  std::uint64_t trace_salt = 0;

  /// Ratekeeper enforcement point: when set, every submit first spends a
  /// token from the caller's bucket (shared with the engine, which both
  /// replenishes it from the controller's rate and charges its own
  /// synthetic arrivals against it). A dry bucket rejects with 429 and a
  /// Retry-After derived from the bucket's actual replenish time — the
  /// same replenish_seconds formula the pressure-shed path uses.
  /// Borrowed, optional.
  control::TokenBucketTable* buckets = nullptr;

  /// Durability: when set, every accepted submission is appended to the
  /// write-ahead task log *before* the ticket (and so the HTTP 200) is
  /// returned — the ack outlives the process. Borrowed, optional; null
  /// keeps submission handling byte-for-byte as before.
  storage::TaskWal* wal = nullptr;
};

/// Aggregate service state returned by GET /stats.
struct ServiceStats {
  std::size_t inbox_depth = 0;
  std::size_t queue_depth = 0;
  std::uint64_t submitted = 0;      // accepted submissions
  std::uint64_t rejected_busy = 0;  // pressure/drain 429s at the door
  std::uint64_t rejected_throttled = 0;  // token-bucket 429s at the door
  std::uint64_t rounds = 0;
  std::uint64_t tasks_matched = 0;
  double sim_time_hours = 0.0;
  double last_round_close_hours = 0.0;
  double round_seconds_ewma = 0.0;  // wall-clock cadence estimate
  double cumulative_regret = 0.0;
  bool draining = false;
  /// WAL recovery bookkeeping (zero unless this incarnation recovered a
  /// data dir): tasks replayed into the queue, and tasks whose terminal
  /// record the WAL already witnessed before the restart. Together they
  /// cover every acceptance the previous incarnation logged.
  std::uint64_t recovered_tasks = 0;
  std::uint64_t recovered_terminal = 0;
  TaskStatusTable::Counts tasks;
};

class GatewayLink {
 public:
  explicit GatewayLink(GatewayLinkConfig config = {});

  // ----- gateway (HTTP worker) side --------------------------------------

  /// Admission decision + registration. `deadline_hours <= 0` applies the
  /// configured default. Rejects when draining, when the client's token
  /// bucket is dry (buckets configured; empty `client` uses the anonymous
  /// bucket), or over high water — in that order.
  SubmitTicket submit(const sim::TaskDescriptor& task,
                      double deadline_hours = 0.0,
                      std::string_view client = {});

  [[nodiscard]] std::optional<TaskStatus> status(std::uint64_t id) const {
    return table_.get(id);
  }

  /// Current simulated time as last hinted by the engine (timestamps the
  /// gateway's SLO observations on the same clock the engine uses).
  [[nodiscard]] double sim_time_hours() const noexcept {
    return sim_time_hours_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ServiceStats stats() const;

  /// Requests a drain: new submissions are rejected, the engine flushes
  /// the queue and returns from serve(). Only stores an atomic, so it is
  /// safe to call from a signal handler.
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

  // ----- engine side -----------------------------------------------------

  /// Takes every pending submission (FIFO). Non-blocking.
  std::vector<ExternalSubmission> drain();

  /// Blocks until a submission arrives, stop is requested, or `wait`
  /// elapses. Returns true when there is something to do.
  bool wait_for_event(std::chrono::milliseconds wait);

  /// Engine hints consumed by the backpressure and /stats paths.
  void note_queue_depth(std::size_t depth) noexcept {
    queue_depth_.store(depth, std::memory_order_relaxed);
  }
  void note_sim_time(double hours) noexcept {
    sim_time_hours_.store(hours, std::memory_order_relaxed);
  }
  /// Simulated hours per wall second (the serve clock rate): converts
  /// bucket deficits into wall-clock Retry-After values.
  void note_sim_rate(double hours_per_second) noexcept {
    if (hours_per_second > 0.0) {
      sim_hours_per_second_.store(hours_per_second,
                                  std::memory_order_relaxed);
    }
  }
  /// One closed round: feeds the cadence EWMA and the /stats aggregates.
  void note_round(std::uint64_t round, double close_hours, double regret,
                  std::size_t batch);

  /// Recovery bookkeeping (engine recover()): surfaces the WAL replay
  /// outcome through /stats so clients (loadgen --resume-report) can
  /// verify conservation across the restart.
  void note_recovery(std::uint64_t replayed, std::uint64_t terminal) noexcept {
    recovered_tasks_.store(replayed, std::memory_order_relaxed);
    recovered_terminal_.store(terminal, std::memory_order_relaxed);
  }

  [[nodiscard]] TaskStatusTable& table() noexcept { return table_; }
  [[nodiscard]] const GatewayLinkConfig& config() const noexcept {
    return config_;
  }

  /// Current pressure = inbox depth + engine queue-depth hint.
  [[nodiscard]] std::size_t pressure() const;

  /// The Retry-After (seconds) a rejection at `pressure` would report.
  /// Exposed for unit tests; monotone in pressure.
  [[nodiscard]] double retry_after_seconds(std::size_t pressure) const;

  /// Engine setup: round-size and cadence priors for Retry-After before
  /// any round has closed.
  void configure_drain(std::size_t round_batch,
                       double expected_round_seconds);

 private:
  GatewayLinkConfig config_;
  TaskStatusTable table_;

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<ExternalSubmission> inbox_;

  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<double> sim_time_hours_{0.0};
  std::atomic<double> sim_hours_per_second_{1.0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_busy_{0};
  std::atomic<std::uint64_t> rejected_throttled_{0};
  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> tasks_matched_{0};
  std::atomic<std::uint64_t> recovered_tasks_{0};
  std::atomic<std::uint64_t> recovered_terminal_{0};
  std::atomic<double> last_round_close_hours_{0.0};
  std::atomic<double> cumulative_regret_{0.0};
  std::atomic<double> round_seconds_ewma_{0.0};
  std::atomic<std::size_t> round_batch_{6};

  /// Wall timestamp of the previous note_round, for the cadence EWMA.
  std::chrono::steady_clock::time_point last_round_wall_{};
  bool saw_round_ = false;
};

}  // namespace mfcp::engine
