// Streaming task arrivals for the online platform engine.
//
// The offline harnesses replay train/test splits; a live exchange platform
// instead sees a continuous stream of job submissions. This module models
// that stream as a seeded non-homogeneous Poisson process: a base rate
// modulated by periodic bursts (diurnal load, batch-submission spikes).
// Every arrival carries a deadline — jobs whose owners give up waiting are
// dropped by the admission queue, so batching latency has a real cost.
//
// Determinism contract: the full arrival sequence (times, tasks, deadlines)
// is a pure function of ArrivalConfig. Two processes with equal configs
// produce bit-identical streams, which is what makes engine runs replayable
// and the frozen-vs-online comparison in bench/exp_online_engine paired.
#pragma once

#include <optional>

#include "sim/task.hpp"

namespace mfcp::engine {

struct ArrivalConfig {
  /// Base Poisson rate in tasks per simulated hour.
  double rate_per_hour = 60.0;
  /// Rate multiplier during bursts (1 = homogeneous Poisson).
  double burst_factor = 1.0;
  /// Burst cycle length in hours; 0 disables bursts entirely.
  double burst_period_hours = 0.0;
  /// Fraction of each cycle spent at the burst rate (start of the cycle).
  double burst_duty = 0.25;
  /// Patience: a task's deadline is its arrival time plus this.
  double deadline_hours = 2.0;
  /// Stream length; the process is exhausted after this many arrivals.
  std::size_t max_arrivals = 500;
  std::uint64_t seed = 0xa221e5ULL;

  /// Instantaneous rate at simulated time t (piecewise constant).
  [[nodiscard]] double rate_at(double t) const noexcept;
};

/// One job submission event.
struct Arrival {
  std::size_t id = 0;          // dense sequence number, 0-based
  double time_hours = 0.0;     // submission time on the simulated clock
  double deadline_hours = 0.0; // drop the job if not dispatched by then
  sim::TaskDescriptor task;
};

/// Lazily generates the arrival stream.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalConfig& config);

  /// Next event, or nullopt once max_arrivals have been emitted.
  std::optional<Arrival> next();

  /// Submission time of the upcoming event without consuming it.
  [[nodiscard]] std::optional<double> peek_time();

  /// Number of arrivals handed out by next() so far.
  [[nodiscard]] std::size_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return !pending_.has_value();
  }

 private:
  void advance();

  ArrivalConfig config_;
  Rng rng_;
  sim::TaskGenerator tasks_;
  double clock_hours_ = 0.0;
  std::size_t generated_ = 0;
  std::size_t emitted_ = 0;
  std::optional<Arrival> pending_;
};

}  // namespace mfcp::engine
