#include "engine/queue.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mfcp::engine {

std::string to_string(DropPolicy policy) {
  switch (policy) {
    case DropPolicy::kRejectNewest:
      return "reject-newest";
    case DropPolicy::kDropOldest:
      return "drop-oldest";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(const QueueConfig& config) : config_(config) {
  MFCP_CHECK(config_.capacity > 0, "queue capacity must be positive");
}

void AdmissionQueue::bind_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    telemetry_ = Telemetry{};
    return;
  }
  telemetry_.offered = &registry->counter("mfcp_queue_offered_total");
  telemetry_.admitted = &registry->counter("mfcp_queue_admitted_total");
  telemetry_.dropped_capacity =
      &registry->counter("mfcp_queue_dropped_capacity_total");
  telemetry_.expired = &registry->counter("mfcp_queue_expired_total");
  telemetry_.dispatched = &registry->counter("mfcp_queue_dispatched_total");
  telemetry_.depth = &registry->gauge("mfcp_queue_depth");
}

void AdmissionQueue::record_depth() noexcept {
  if (telemetry_.depth != nullptr) {
    telemetry_.depth->set(static_cast<double>(queue_.size()));
  }
}

bool AdmissionQueue::push(Arrival arrival) {
  ++stats_.offered;
  if (telemetry_.offered != nullptr) {
    telemetry_.offered->add(1);
  }
  if (queue_.size() >= config_.capacity) {
    if (config_.policy == DropPolicy::kRejectNewest) {
      ++stats_.dropped_capacity;
      if (telemetry_.dropped_capacity != nullptr) {
        telemetry_.dropped_capacity->add(1);
      }
      if (on_loss_) {
        on_loss_(arrival, Loss::kCapacity);
      }
      if (track_losses_) {
        recent_losses_.push_back(std::move(arrival));
      }
      return false;
    }
    if (on_loss_) {
      on_loss_(queue_.front(), Loss::kCapacity);
    }
    if (track_losses_) {
      recent_losses_.push_back(std::move(queue_.front()));
    }
    queue_.pop_front();
    ++stats_.dropped_capacity;
    if (telemetry_.dropped_capacity != nullptr) {
      telemetry_.dropped_capacity->add(1);
    }
  }
  queue_.push_back(std::move(arrival));
  ++stats_.admitted;
  if (telemetry_.admitted != nullptr) {
    telemetry_.admitted->add(1);
  }
  record_depth();
  return true;
}

void AdmissionQueue::expire(double now) {
  // FIFO admission does not imply FIFO deadlines (patience is uniform here
  // but need not stay so), so scan the whole buffer.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline_hours < now) {
      if (on_loss_) {
        on_loss_(*it, Loss::kExpired);
      }
      if (track_losses_) {
        recent_losses_.push_back(std::move(*it));
      }
      it = queue_.erase(it);
      ++stats_.expired;
      if (telemetry_.expired != nullptr) {
        telemetry_.expired->add(1);
      }
    } else {
      ++it;
    }
  }
  record_depth();
}

void AdmissionQueue::set_loss_tracking(bool enabled) {
  track_losses_ = enabled;
  if (!enabled) {
    recent_losses_.clear();
  }
}

std::vector<Arrival> AdmissionQueue::take_recent_losses() {
  std::vector<Arrival> out;
  out.swap(recent_losses_);
  return out;
}

std::vector<Arrival> AdmissionQueue::pop_batch(std::size_t n) {
  std::vector<Arrival> batch;
  const std::size_t take = std::min(n, queue_.size());
  batch.reserve(take);
  for (std::size_t k = 0; k < take; ++k) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  stats_.dispatched += batch.size();
  if (telemetry_.dispatched != nullptr) {
    telemetry_.dispatched->add(batch.size());
  }
  record_depth();
  return batch;
}

double AdmissionQueue::oldest_arrival_time() const {
  MFCP_CHECK(!queue_.empty(), "oldest_arrival_time on empty queue");
  return queue_.front().time_hours;
}

}  // namespace mfcp::engine
