#include "engine/queue.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mfcp::engine {

std::string to_string(DropPolicy policy) {
  switch (policy) {
    case DropPolicy::kRejectNewest:
      return "reject-newest";
    case DropPolicy::kDropOldest:
      return "drop-oldest";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(const QueueConfig& config) : config_(config) {
  MFCP_CHECK(config_.capacity > 0, "queue capacity must be positive");
}

bool AdmissionQueue::push(Arrival arrival) {
  ++stats_.offered;
  if (queue_.size() >= config_.capacity) {
    if (config_.policy == DropPolicy::kRejectNewest) {
      ++stats_.dropped_capacity;
      return false;
    }
    queue_.pop_front();
    ++stats_.dropped_capacity;
  }
  queue_.push_back(std::move(arrival));
  ++stats_.admitted;
  return true;
}

void AdmissionQueue::expire(double now) {
  // FIFO admission does not imply FIFO deadlines (patience is uniform here
  // but need not stay so), so scan the whole buffer.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline_hours < now) {
      it = queue_.erase(it);
      ++stats_.expired;
    } else {
      ++it;
    }
  }
}

std::vector<Arrival> AdmissionQueue::pop_batch(std::size_t n) {
  std::vector<Arrival> batch;
  const std::size_t take = std::min(n, queue_.size());
  batch.reserve(take);
  for (std::size_t k = 0; k < take; ++k) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  stats_.dispatched += batch.size();
  return batch;
}

double AdmissionQueue::oldest_arrival_time() const {
  MFCP_CHECK(!queue_.empty(), "oldest_arrival_time on empty queue");
  return queue_.front().time_hours;
}

}  // namespace mfcp::engine
