// obs_selfcheck: offline validator for the observability layer's two file
// formats, used by CI to gate what the repo exports.
//
//   --exposition <file>   Prometheus text exposition (write_prometheus
//                         output or a /metrics scrape). Checks:
//                           * every line is a comment, a `# TYPE` header,
//                             or a well-formed sample;
//                           * families are contiguous (a TYPE header never
//                             repeats) and name-sorted within each run of
//                             the same kind;
//                           * every sample belongs to the family declared
//                             by the preceding TYPE header;
//                           * histogram series have non-decreasing
//                             cumulative `le` buckets ending at le="+Inf",
//                             whose value equals the series' `_count`,
//                             with `_sum` present;
//                           * every histogram family with observations has
//                             a sibling `<base>_quantile` gauge family.
//
//   --require-gateway     fail unless the exposition carries the platform
//                         gateway's metric families: request counters with
//                         route=/status= labels, a nonzero submit-latency
//                         histogram, and its complete _quantile gauge set
//                         (quantile= 0.5, 0.9, 0.99 — no gaps, no extras).
//
//   --require-slo         fail unless the exposition carries the SLO
//                         monitor's gauge families for all four SLIs
//                         (submit_latency, dispatch_success, expiry,
//                         regret_gap): mfcp_slo_value/budget/firing per
//                         SLI, and mfcp_slo_burn_rate with both
//                         window="fast" and window="slow" per SLI.
//
//   --journal <file>      engine round journal (JSONL). Checks each line
//                         is a flat JSON object and, where the regret-
//                         attribution fields are present, that they sum to
//                         attr_total within 1e-6 (the decomposition's
//                         exactness invariant, re-verified from the
//                         serialized values).
//   --require-attribution fail unless at least one journal record carries
//                         the attribution fields.
//
//   --tasktraces <file>   task-trace JSONL (TraceStore::drain_to output).
//                         Checks each record carries a 16-hex trace_id, a
//                         task_id, a state, a non-empty chain, and exactly
//                         `spans` sN_name fields; fails when the file has
//                         no records at all (a vacuous pass would hide a
//                         sampling wiring bug).
//
//   --flight <file>       flight-recorder dump, either format:
//                           * raw crash dump ("MFCPFLT1" magic): header
//                             fields are sane, the file size matches
//                             64 + ring_count*(16 + capacity*64) exactly
//                             (no truncation), every live slot's sequence
//                             number maps back to its slot index, and
//                             kind/thread fields decode within range;
//                           * JSONL dump (watchdog/shutdown): the first
//                             record is flight_meta, every record is one
//                             of flight_meta/heartbeat/event, no line is
//                             truncated, per-thread event seqs are
//                             strictly increasing, and kinds are drawn
//                             from the recorder's closed vocabulary.
//
//   --profile <file>      folded flamegraph output from the sampling
//                         profiler (/debug/profile or --profile). Checks
//                         every line is "frame[;frame...] count" with a
//                         positive integer count and non-empty frames,
//                         that the exact-accounting [stage_totals] anchors
//                         cover all five engine stages (embed, predict,
//                         match, attribute, dispatch), and that at least
//                         one sampled stack carries a stage: tag.
//
//   --bench-diff <baseline> <fresh>
//                         two bench-summary JSONL records (--bench-json
//                         output). Prints WARN when a mode's rounds/s
//                         dropped, or a stage p99 rose, by more than 15%
//                         against the baseline. Warnings do not fail the
//                         check (CI surfaces them without gating); only
//                         malformed input does.
//
//   --storage <dir>       durability data directory (--data-dir of a
//                         platform run). Validates all three stores
//                         against re-implemented copies of their formats
//                         (so a serialization bug cannot vouch for
//                         itself):
//                           * wal/wal-*.log: every frame is
//                             [len u32][crc u32][payload], len is the
//                             fixed payload size, the CRC32 matches, the
//                             type byte is known, and sequence numbers
//                             are strictly increasing across segments; a
//                             partial or bad frame is tolerated only as
//                             the newest segment's torn tail;
//                           * checkpoints/: MANIFEST names an existing
//                             snapshot whose generation and wal_seq agree
//                             with it, and every retained snapshot-*.ckpt
//                             carries a valid wrapper header;
//                           * journal/chunk-*.jsonl: every line is a JSON
//                             record or the index footer, every sealed
//                             (non-newest) chunk ends with a footer whose
//                             chunk id, record count, and payload bytes
//                             match a recount of the file.
//
// Exit status: 0 = all checks pass, 1 = a check failed, 2 = usage/IO.
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace {

int failures = 0;

void fail(const std::string& what, std::size_t line_no,
          const std::string& line) {
  std::fprintf(stderr, "FAIL line %zu: %s\n  %s\n", line_no, what.c_str(),
               line.c_str());
  ++failures;
}

/// "name{labels} value" or "name value" -> parts. Returns false on a line
/// that does not scan.
struct Sample {
  std::string name;    // base + suffixes, labels stripped
  std::string labels;  // inside the braces, empty if none
  double value = 0.0;
};

std::optional<Sample> parse_sample(const std::string& line) {
  Sample s;
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') {
    ++i;
  }
  if (i == 0 || i == line.size()) {
    return std::nullopt;
  }
  s.name = line.substr(0, i);
  if (line[i] == '{') {
    const std::size_t close = line.find('}', i);
    if (close == std::string::npos || close + 1 >= line.size() ||
        line[close + 1] != ' ') {
      return std::nullopt;
    }
    s.labels = line.substr(i + 1, close - i - 1);
    i = close + 1;
  }
  const char* start = line.c_str() + i + 1;
  char* end = nullptr;
  s.value = std::strtod(start, &end);
  if (end == start) {
    // write_prometheus renders infinities as +Inf/-Inf.
    if (std::strcmp(start, "+Inf") == 0) {
      s.value = HUGE_VAL;
    } else if (std::strcmp(start, "-Inf") == 0) {
      s.value = -HUGE_VAL;
    } else {
      return std::nullopt;
    }
  } else if (*end != '\0') {
    return std::nullopt;
  }
  return s;
}

/// Strips one `le="..."` pair out of a label string, returning the rest
/// (the series key) and the bound. nullopt when no le label exists.
std::optional<std::pair<std::string, std::string>> split_le(
    const std::string& labels) {
  const std::size_t pos = labels.find("le=\"");
  if (pos == std::string::npos) {
    return std::nullopt;
  }
  const std::size_t close = labels.find('"', pos + 4);
  if (close == std::string::npos) {
    return std::nullopt;
  }
  std::string rest = labels.substr(0, pos) + labels.substr(close + 1);
  // Tidy dangling commas left by the removal.
  while (!rest.empty() && (rest.back() == ',')) {
    rest.pop_back();
  }
  if (!rest.empty() && rest.front() == ',') {
    rest.erase(rest.begin());
  }
  return std::make_pair(rest, labels.substr(pos + 4, close - pos - 4));
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Extracts the value of `label="..."` from a label string, or nullopt.
std::optional<std::string> label_value(const std::string& labels,
                                       const char* label) {
  const std::string needle = std::string(label) + "=\"";
  const std::size_t pos = labels.find(needle);
  if (pos == std::string::npos) {
    return std::nullopt;
  }
  const std::size_t close = labels.find('"', pos + needle.size());
  if (close == std::string::npos) {
    return std::nullopt;
  }
  return labels.substr(pos + needle.size(), close - pos - needle.size());
}

int check_exposition(const std::string& path, bool require_gateway,
                     bool require_slo) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open exposition file %s\n", path.c_str());
    return 2;
  }

  std::string family;       // base name of the current TYPE header
  std::string family_kind;  // counter | gauge | histogram
  std::set<std::string> seen_families;
  std::string prev_family_in_run;  // for the per-kind sort check
  std::string prev_kind;

  // Per-histogram-series state (the writer emits each series contiguously:
  // buckets ascending, then _sum, then _count).
  std::string series_key;  // labels minus le
  double last_bucket = -1.0;
  bool saw_inf = false;
  double inf_value = 0.0;
  bool saw_sum = false;
  std::set<std::string> nonzero_histograms;
  std::set<std::string> quantile_families;

  // Gateway-family evidence for --require-gateway.
  std::size_t gateway_request_samples = 0;
  std::set<std::string> gateway_quantiles;

  // SLO-family evidence for --require-slo: which SLIs each family
  // covers, and (sli, window) pairs for the burn-rate family.
  std::set<std::string> slo_value_slis;
  std::set<std::string> slo_budget_slis;
  std::set<std::string> slo_firing_slis;
  std::set<std::string> slo_burn_pairs;  // "sli/window"

  auto close_series = [&](std::size_t line_no, const std::string& line) {
    if (!series_key.empty() || last_bucket >= 0.0) {
      if (!saw_inf) {
        fail("histogram series ended without an le=\"+Inf\" bucket",
             line_no, line);
      }
    }
    series_key.clear();
    last_bucket = -1.0;
    saw_inf = false;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      close_series(line_no, line);
      if (family_kind == "histogram" && !saw_sum) {
        fail("histogram family '" + family + "' has no _sum sample",
             line_no, line);
      }
      saw_sum = false;
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      if (sp == std::string::npos) {
        fail("malformed TYPE header", line_no, line);
        continue;
      }
      family = rest.substr(0, sp);
      family_kind = rest.substr(sp + 1);
      if (!seen_families.insert(family).second) {
        fail("family '" + family +
                 "' declared twice (interleaved exposition)",
             line_no, line);
      }
      if (family_kind == prev_kind && family <= prev_family_in_run) {
        fail("family '" + family + "' out of name order after '" +
                 prev_family_in_run + "'",
             line_no, line);
      }
      prev_kind = family_kind;
      prev_family_in_run = family;
      if (family_kind == "gauge" && ends_with(family, "_quantile")) {
        quantile_families.insert(
            family.substr(0, family.size() - std::strlen("_quantile")));
      }
      continue;
    }
    if (line[0] == '#') {
      continue;  // HELP or free-form comment
    }
    const std::optional<Sample> s = parse_sample(line);
    if (!s.has_value()) {
      fail("unparseable sample line", line_no, line);
      continue;
    }
    if (family.empty()) {
      fail("sample before any TYPE header", line_no, line);
      continue;
    }
    if (family == "mfcp_gateway_requests_total" &&
        label_value(s->labels, "route").has_value() &&
        label_value(s->labels, "status").has_value()) {
      ++gateway_request_samples;
    }
    if (family == "mfcp_slo_value" || family == "mfcp_slo_budget" ||
        family == "mfcp_slo_firing" || family == "mfcp_slo_burn_rate") {
      const auto sli = label_value(s->labels, "sli");
      if (!sli.has_value()) {
        fail("SLO sample without an sli label", line_no, line);
      } else if (family == "mfcp_slo_value") {
        slo_value_slis.insert(*sli);
      } else if (family == "mfcp_slo_budget") {
        slo_budget_slis.insert(*sli);
      } else if (family == "mfcp_slo_firing") {
        slo_firing_slis.insert(*sli);
      } else {
        const auto window = label_value(s->labels, "window");
        if (!window.has_value()) {
          fail("mfcp_slo_burn_rate sample without a window label", line_no,
               line);
        } else {
          slo_burn_pairs.insert(*sli + "/" + *window);
        }
      }
    }
    if (family == "mfcp_gateway_submit_seconds_quantile") {
      if (const auto q = label_value(s->labels, "quantile")) {
        if (!gateway_quantiles.insert(*q).second) {
          fail("duplicate gateway quantile series for quantile=" + *q,
               line_no, line);
        }
      } else {
        fail("gateway quantile sample without a quantile label", line_no,
             line);
      }
    }
    if (family_kind == "histogram") {
      if (s->name == family + "_bucket") {
        const auto le = split_le(s->labels);
        if (!le.has_value()) {
          fail("_bucket sample without an le label", line_no, line);
          continue;
        }
        if (le->first != series_key || saw_inf) {
          close_series(line_no, line);
          series_key = le->first;
        }
        if (s->value + 1e-9 < last_bucket) {
          fail("cumulative le buckets decreased", line_no, line);
        }
        last_bucket = s->value;
        if (le->second == "+Inf") {
          saw_inf = true;
          inf_value = s->value;
        }
      } else if (s->name == family + "_sum") {
        saw_sum = true;
      } else if (s->name == family + "_count") {
        if (!saw_inf) {
          fail("_count before the series' le=\"+Inf\" bucket", line_no,
               line);
        } else if (std::fabs(s->value - inf_value) > 1e-9) {
          fail("le=\"+Inf\" bucket disagrees with _count", line_no, line);
        }
        if (s->value > 0.0) {
          nonzero_histograms.insert(family);
        }
        close_series(line_no, line);
      } else {
        fail("sample '" + s->name + "' outside its family '" + family + "'",
             line_no, line);
      }
    } else if (s->name != family) {
      fail("sample '" + s->name + "' outside its family '" + family + "'",
           line_no, line);
    }
  }
  close_series(line_no + 1, "<eof>");
  if (family_kind == "histogram" && !saw_sum) {
    fail("histogram family '" + family + "' has no _sum sample",
         line_no + 1, "<eof>");
  }
  for (const std::string& h : nonzero_histograms) {
    if (quantile_families.count(h) == 0) {
      fail("histogram '" + h +
               "' has observations but no _quantile gauge family",
           line_no + 1, "<eof>");
    }
  }
  if (require_gateway) {
    if (gateway_request_samples == 0) {
      std::fprintf(stderr,
                   "FAIL: --require-gateway but no "
                   "mfcp_gateway_requests_total sample carries route= and "
                   "status= labels\n");
      ++failures;
    }
    if (nonzero_histograms.count("mfcp_gateway_submit_seconds") == 0) {
      std::fprintf(stderr,
                   "FAIL: --require-gateway but mfcp_gateway_submit_seconds "
                   "has no observations\n");
      ++failures;
    }
    const std::set<std::string> expected = {"0.5", "0.9", "0.99"};
    if (gateway_quantiles != expected) {
      std::string got;
      for (const std::string& q : gateway_quantiles) {
        got += (got.empty() ? "" : ",") + q;
      }
      std::fprintf(stderr,
                   "FAIL: --require-gateway: submit quantile family must "
                   "carry exactly quantile= 0.5,0.9,0.99 (got: %s)\n",
                   got.empty() ? "<none>" : got.c_str());
      ++failures;
    }
  }
  if (require_slo) {
    const char* kSlis[] = {"submit_latency", "dispatch_success", "expiry",
                           "regret_gap"};
    for (const char* sli : kSlis) {
      if (slo_value_slis.count(sli) == 0) {
        std::fprintf(stderr,
                     "FAIL: --require-slo: no mfcp_slo_value sample for "
                     "sli=\"%s\"\n",
                     sli);
        ++failures;
      }
      if (slo_budget_slis.count(sli) == 0) {
        std::fprintf(stderr,
                     "FAIL: --require-slo: no mfcp_slo_budget sample for "
                     "sli=\"%s\"\n",
                     sli);
        ++failures;
      }
      if (slo_firing_slis.count(sli) == 0) {
        std::fprintf(stderr,
                     "FAIL: --require-slo: no mfcp_slo_firing sample for "
                     "sli=\"%s\"\n",
                     sli);
        ++failures;
      }
      for (const char* window : {"fast", "slow"}) {
        if (slo_burn_pairs.count(std::string(sli) + "/" + window) == 0) {
          std::fprintf(stderr,
                       "FAIL: --require-slo: no mfcp_slo_burn_rate sample "
                       "for sli=\"%s\" window=\"%s\"\n",
                       sli, window);
          ++failures;
        }
      }
    }
  }
  std::printf("exposition %s: %zu lines, %zu families, %zu histograms with "
              "observations, %zu gateway request samples\n",
              path.c_str(), line_no, seen_families.size(),
              nonzero_histograms.size(), gateway_request_samples);
  return failures == 0 ? 0 : 1;
}

/// Minimal flat-JSON number extraction: finds "key": and strtod's what
/// follows. Good enough for the journal's writer, which never nests.
std::optional<double> json_field(const std::string& line,
                                 const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return std::nullopt;
  }
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) {
    return std::nullopt;  // non-numeric (e.g. null)
  }
  return v;
}

int check_journal(const std::string& path, bool require_attribution) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open journal file %s\n", path.c_str());
    return 2;
  }
  std::string line;
  std::size_t line_no = 0;
  std::size_t attributed = 0;
  double worst = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line.front() != '{' || line.back() != '}') {
      fail("journal line is not a JSON object", line_no, line);
      continue;
    }
    const auto pred = json_field(line, "pred_gap");
    if (!pred.has_value()) {
      continue;  // attribution off for this record
    }
    const auto solver = json_field(line, "solver_gap");
    const auto rounding = json_field(line, "rounding_gap");
    const auto admission = json_field(line, "admission_gap");
    const auto total = json_field(line, "attr_total");
    if (!solver || !rounding || !admission || !total) {
      fail("partial attribution record", line_no, line);
      continue;
    }
    const double residual =
        std::fabs(*pred + *solver + *rounding + *admission - *total);
    worst = std::max(worst, residual);
    if (residual > 1e-6) {
      fail("attribution terms do not sum to attr_total (|residual| = " +
               std::to_string(residual) + ")",
           line_no, line);
    }
    ++attributed;
  }
  if (require_attribution && attributed == 0) {
    std::fprintf(stderr,
                 "FAIL: --require-attribution but no journal record "
                 "carries attribution fields\n");
    ++failures;
  }
  std::printf("journal %s: %zu lines, %zu attributed (worst residual "
              "%.3g)\n",
              path.c_str(), line_no, attributed, worst);
  return failures == 0 ? 0 : 1;
}

/// Minimal flat-JSON string extraction: the value of "key":"..." with no
/// unescaping (the writers never escape the fields checked here).
std::optional<std::string> json_string_field(const std::string& line,
                                             const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return std::nullopt;
  }
  const std::size_t close = line.find('"', pos + needle.size());
  if (close == std::string::npos) {
    return std::nullopt;
  }
  return line.substr(pos + needle.size(), close - pos - needle.size());
}

int check_tasktraces(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open tasktraces file %s\n", path.c_str());
    return 2;
  }
  std::string line;
  std::size_t line_no = 0;
  std::size_t records = 0;
  std::size_t complete = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line.front() != '{' || line.back() != '}') {
      fail("tasktrace line is not a JSON object", line_no, line);
      continue;
    }
    ++records;
    const auto trace_id = json_string_field(line, "trace_id");
    if (!trace_id.has_value() || trace_id->size() != 16 ||
        trace_id->find_first_not_of("0123456789abcdef") !=
            std::string::npos) {
      fail("tasktrace record without a 16-hex trace_id", line_no, line);
    }
    if (!json_field(line, "task_id").has_value()) {
      fail("tasktrace record without a task_id", line_no, line);
    }
    const auto state = json_string_field(line, "state");
    if (!state.has_value() || state->empty()) {
      fail("tasktrace record without a state", line_no, line);
    } else if (*state != "in_flight") {
      ++complete;
    }
    const auto chain = json_string_field(line, "chain");
    if (!chain.has_value() || chain->empty()) {
      fail("tasktrace record without a span chain", line_no, line);
    }
    const auto spans = json_field(line, "spans");
    if (!spans.has_value() || *spans < 1.0) {
      fail("tasktrace record without spans", line_no, line);
      continue;
    }
    // Every declared span must have its sN_name field, and no extras.
    std::size_t named = 0;
    for (std::size_t pos = line.find("_name\":"); pos != std::string::npos;
         pos = line.find("_name\":", pos + 1)) {
      ++named;
    }
    if (named != static_cast<std::size_t>(*spans)) {
      fail("span count disagrees with sN_name fields (spans=" +
               std::to_string(static_cast<std::size_t>(*spans)) +
               ", named=" + std::to_string(named) + ")",
           line_no, line);
    }
  }
  if (records == 0) {
    std::fprintf(stderr,
                 "FAIL: tasktraces file %s has no records (sampling "
                 "produced nothing)\n",
                 path.c_str());
    ++failures;
  }
  std::printf("tasktraces %s: %zu lines, %zu records, %zu terminal\n",
              path.c_str(), line_no, records, complete);
  return failures == 0 ? 0 : 1;
}

// ----------------------------------------------------------- --flight --

/// The recorder's closed kind vocabulary (mirrors obs::FlightKind; this
/// tool revalidates the on-disk formats without linking the library).
const char* const kFlightKinds[] = {
    "none",         "round_begin", "round_end",   "batch_formed",
    "solver_iters", "admission",   "rate_change", "http_begin",
    "http_end",     "queue_transition", "retrain", "watchdog_stall",
};
constexpr std::size_t kFlightKindCount =
    sizeof(kFlightKinds) / sizeof(kFlightKinds[0]);

std::uint64_t read_u64le(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

/// Raw crash dump: 64-byte header, then per ring [index u64, head u64] +
/// capacity 64-byte slots of raw seqlock words. Written from a signal
/// handler while other threads may still be recording, so slot checks
/// allow a slot to run at most one full ring ahead of the captured head.
int check_flight_raw(const std::string& path,
                     const std::vector<unsigned char>& bytes) {
  if (bytes.size() < 64) {
    std::fprintf(stderr, "FAIL: flight dump shorter than its header\n");
    ++failures;
    return 1;
  }
  const std::uint64_t signal_number = read_u64le(&bytes[8]);
  const std::uint64_t ring_count = read_u64le(&bytes[16]);
  const std::uint64_t capacity = read_u64le(&bytes[24]);
  const std::uint64_t event_bytes = read_u64le(&bytes[32]);
  const std::uint64_t events_total = read_u64le(&bytes[40]);
  const std::uint64_t dropped_total = read_u64le(&bytes[48]);
  if (event_bytes != 64) {
    std::fprintf(stderr, "FAIL: flight header event_bytes %llu != 64\n",
                 static_cast<unsigned long long>(event_bytes));
    ++failures;
  }
  // ring_count 0 is legal: the process crashed before any thread recorded
  // an event, so the dump is just the header.
  if (ring_count > 0xFFFF) {
    std::fprintf(stderr, "FAIL: flight header ring_count %llu implausible\n",
                 static_cast<unsigned long long>(ring_count));
    ++failures;
    return 1;
  }
  if (capacity == 0 || (capacity & (capacity - 1)) != 0) {
    std::fprintf(stderr,
                 "FAIL: flight header ring capacity %llu not a power of "
                 "two\n",
                 static_cast<unsigned long long>(capacity));
    ++failures;
    return 1;
  }
  const std::uint64_t expected =
      64 + ring_count * (16 + capacity * 64);
  if (bytes.size() != expected) {
    std::fprintf(stderr,
                 "FAIL: flight dump truncated: %zu bytes, expected %llu "
                 "(%llu rings x %llu slots)\n",
                 bytes.size(), static_cast<unsigned long long>(expected),
                 static_cast<unsigned long long>(ring_count),
                 static_cast<unsigned long long>(capacity));
    ++failures;
    return 1;
  }
  std::size_t live_slots = 0;
  for (std::uint64_t r = 0; r < ring_count; ++r) {
    const std::size_t base =
        64 + static_cast<std::size_t>(r * (16 + capacity * 64));
    const std::uint64_t index = read_u64le(&bytes[base]);
    const std::uint64_t head = read_u64le(&bytes[base + 8]);
    if (index != r) {
      std::fprintf(stderr, "FAIL: ring %llu header carries index %llu\n",
                   static_cast<unsigned long long>(r),
                   static_cast<unsigned long long>(index));
      ++failures;
    }
    for (std::uint64_t s = 0; s < capacity; ++s) {
      const unsigned char* slot =
          &bytes[base + 16 + static_cast<std::size_t>(s) * 64];
      const std::uint64_t seq = read_u64le(slot);
      if (seq == 0) {
        continue;  // empty, or caught mid-write by the crash
      }
      if ((seq - 1) % capacity != s) {
        std::fprintf(stderr,
                     "FAIL: ring %llu slot %llu holds seq %llu, which maps "
                     "to slot %llu\n",
                     static_cast<unsigned long long>(r),
                     static_cast<unsigned long long>(s),
                     static_cast<unsigned long long>(seq),
                     static_cast<unsigned long long>((seq - 1) % capacity));
        ++failures;
        continue;
      }
      if (seq > head + capacity) {
        std::fprintf(stderr,
                     "FAIL: ring %llu slot %llu seq %llu is more than one "
                     "ring ahead of head %llu\n",
                     static_cast<unsigned long long>(r),
                     static_cast<unsigned long long>(s),
                     static_cast<unsigned long long>(seq),
                     static_cast<unsigned long long>(head));
        ++failures;
        continue;
      }
      const std::uint64_t packed = read_u64le(slot + 56);
      const std::uint64_t kind = packed & 0xFFFF;
      const std::uint64_t thread = (packed >> 16) & 0xFFFF;
      if (kind == 0 || kind >= kFlightKindCount) {
        std::fprintf(stderr,
                     "FAIL: ring %llu slot %llu carries unknown kind %llu\n",
                     static_cast<unsigned long long>(r),
                     static_cast<unsigned long long>(s),
                     static_cast<unsigned long long>(kind));
        ++failures;
      }
      if (thread != r) {
        std::fprintf(stderr,
                     "FAIL: ring %llu slot %llu carries thread %llu\n",
                     static_cast<unsigned long long>(r),
                     static_cast<unsigned long long>(s),
                     static_cast<unsigned long long>(thread));
        ++failures;
      }
      ++live_slots;
    }
  }
  std::printf("flight raw dump %s: signal %llu, %llu rings x %llu slots, "
              "%zu live events (%llu recorded, %llu dropped)\n",
              path.c_str(), static_cast<unsigned long long>(signal_number),
              static_cast<unsigned long long>(ring_count),
              static_cast<unsigned long long>(capacity), live_slots,
              static_cast<unsigned long long>(events_total),
              static_cast<unsigned long long>(dropped_total));
  return failures == 0 ? 0 : 1;
}

/// JSONL dump (watchdog stall / orderly shutdown): flight_meta first,
/// then heartbeat and event records; per-thread seqs strictly increase.
int check_flight_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open flight file %s\n", path.c_str());
    return 2;
  }
  std::string line;
  std::size_t line_no = 0;
  std::size_t heartbeats = 0;
  std::size_t events = 0;
  bool meta_seen = false;
  double meta_events_total = 0.0;
  std::vector<std::uint64_t> last_seq;  // indexed by thread ordinal
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line.front() != '{' || line.back() != '}') {
      fail("flight record truncated or not a JSON object", line_no, line);
      continue;
    }
    const auto record = json_string_field(line, "record");
    if (!record.has_value()) {
      fail("flight record without a record tag", line_no, line);
      continue;
    }
    if (*record == "flight_meta") {
      if (meta_seen) {
        fail("second flight_meta record", line_no, line);
      }
      if (line_no != 1) {
        fail("flight_meta is not the first record", line_no, line);
      }
      meta_seen = true;
      if (!json_string_field(line, "reason").has_value()) {
        fail("flight_meta without a reason", line_no, line);
      }
      meta_events_total = json_field(line, "events_total").value_or(-1.0);
      if (meta_events_total < 0.0 ||
          !json_field(line, "ring_capacity").has_value() ||
          !json_field(line, "threads").has_value()) {
        fail("flight_meta missing counters", line_no, line);
      }
    } else if (*record == "heartbeat") {
      ++heartbeats;
      const auto name = json_string_field(line, "name");
      if (!name.has_value() || name->empty()) {
        fail("heartbeat record without a name", line_no, line);
      }
      if (!json_field(line, "age_seconds").has_value()) {
        fail("heartbeat record without age_seconds", line_no, line);
      }
    } else if (*record == "event") {
      ++events;
      const auto thread = json_field(line, "thread");
      const auto seq = json_field(line, "seq");
      const auto kind = json_string_field(line, "kind");
      if (!thread || !seq || !json_field(line, "wall_ns") ||
          !json_field(line, "t_hours")) {
        fail("event record missing fields", line_no, line);
        continue;
      }
      bool known = false;
      for (std::size_t i = 1; i < kFlightKindCount; ++i) {
        if (kind.has_value() && *kind == kFlightKinds[i]) {
          known = true;
          break;
        }
      }
      if (!known) {
        fail("event record with unknown kind", line_no, line);
      }
      const auto t = static_cast<std::size_t>(*thread);
      if (t >= last_seq.size()) {
        last_seq.resize(t + 1, 0);
      }
      if (*seq <= static_cast<double>(last_seq[t])) {
        fail("per-thread event seq not strictly increasing", line_no, line);
      }
      last_seq[t] = static_cast<std::uint64_t>(*seq);
    } else {
      fail("unknown flight record tag '" + *record + "'", line_no, line);
    }
  }
  if (!meta_seen) {
    std::fprintf(stderr, "FAIL: flight file %s has no flight_meta record\n",
                 path.c_str());
    ++failures;
  }
  if (meta_seen && meta_events_total > 0.0 && events == 0) {
    std::fprintf(stderr,
                 "FAIL: flight_meta reports %.0f events but the dump "
                 "carries none\n",
                 meta_events_total);
    ++failures;
  }
  std::printf("flight jsonl %s: %zu lines, %zu heartbeats, %zu events "
              "across %zu threads\n",
              path.c_str(), line_no, heartbeats, events, last_seq.size());
  return failures == 0 ? 0 : 1;
}

int check_profile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open profile file %s\n", path.c_str());
    return 2;
  }
  const char* kStages[] = {"embed", "predict", "match", "attribute",
                           "dispatch"};
  bool stage_anchor_seen[5] = {false, false, false, false, false};
  std::size_t sampled_stacks = 0;
  std::size_t stage_tagged_stacks = 0;
  std::uint64_t total_count = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      fail("empty line in folded profile", line_no, line);
      continue;
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      fail("folded line is not 'stack count'", line_no, line);
      continue;
    }
    const std::string count_text = line.substr(space + 1);
    std::uint64_t count = 0;
    bool numeric = true;
    for (const char c : count_text) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      count = count * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!numeric || count == 0) {
      fail("folded count is not a positive integer", line_no, line);
      continue;
    }
    total_count += count;
    // Frames: ';'-separated, none empty (an empty frame means a stray
    // separator slipped through sanitization).
    const std::string stack = line.substr(0, space);
    std::size_t begin = 0;
    bool frames_ok = true;
    while (begin <= stack.size()) {
      const std::size_t semi = stack.find(';', begin);
      const std::size_t end = semi == std::string::npos ? stack.size() : semi;
      if (end == begin) {
        frames_ok = false;
        break;
      }
      if (semi == std::string::npos) {
        break;
      }
      begin = semi + 1;
    }
    if (!frames_ok) {
      fail("folded stack has an empty frame", line_no, line);
      continue;
    }
    if (stack.rfind("[stage_totals];", 0) == 0) {
      const std::string stage = stack.substr(std::strlen("[stage_totals];"));
      for (std::size_t s = 0; s < 5; ++s) {
        if (stage == kStages[s]) {
          stage_anchor_seen[s] = true;
        }
      }
    } else {
      ++sampled_stacks;
      if (stack.find(";stage:") != std::string::npos) {
        ++stage_tagged_stacks;
      }
    }
  }
  if (line_no == 0) {
    std::fprintf(stderr, "FAIL: profile file %s is empty\n", path.c_str());
    ++failures;
  }
  for (std::size_t s = 0; s < 5; ++s) {
    if (!stage_anchor_seen[s]) {
      std::fprintf(stderr,
                   "FAIL: profile missing [stage_totals];%s anchor\n",
                   kStages[s]);
      ++failures;
    }
  }
  if (sampled_stacks == 0) {
    std::fprintf(stderr,
                 "FAIL: profile has no sampled stacks (anchors only)\n");
    ++failures;
  } else if (stage_tagged_stacks == 0) {
    std::fprintf(stderr,
                 "FAIL: no sampled stack carries a stage: tag\n");
    ++failures;
  }
  std::printf("profile %s: %zu lines, %zu sampled stacks (%zu stage-"
              "tagged), total count %llu\n",
              path.c_str(), line_no, sampled_stacks, stage_tagged_stacks,
              static_cast<unsigned long long>(total_count));
  return failures == 0 ? 0 : 1;
}

/// Reads the first bench_summary record of a --bench-json file.
std::optional<std::string> read_bench_summary(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return std::nullopt;
  }
  std::string line;
  while (std::getline(in, line)) {
    const auto record = json_string_field(line, "record");
    if (record.has_value() && *record == "bench_summary") {
      return line;
    }
  }
  return std::nullopt;
}

int check_bench_diff(const std::string& baseline_path,
                     const std::string& fresh_path) {
  const auto baseline = read_bench_summary(baseline_path);
  const auto fresh = read_bench_summary(fresh_path);
  if (!baseline.has_value()) {
    std::fprintf(stderr, "no bench_summary record in %s\n",
                 baseline_path.c_str());
    return 2;
  }
  if (!fresh.has_value()) {
    std::fprintf(stderr, "no bench_summary record in %s\n",
                 fresh_path.c_str());
    return 2;
  }
  constexpr double kWarnPct = 15.0;
  std::size_t compared = 0;
  std::size_t warned = 0;
  // Throughput per mode: warn when the fresh run lost more than 15%.
  for (const char* mode : {"frozen", "online"}) {
    const std::string key = std::string(mode) + "_rounds_per_second";
    const auto base = json_field(*baseline, key.c_str());
    const auto now = json_field(*fresh, key.c_str());
    if (!base.has_value() || !now.has_value()) {
      fail("bench summary missing " + key, 1,
           base.has_value() ? *fresh : *baseline);
      continue;
    }
    ++compared;
    if (*base > 0.0 && *now < *base * (1.0 - kWarnPct / 100.0)) {
      ++warned;
      std::printf("WARN: %s dropped %.1f%% (%.2f -> %.2f rounds/s, "
                  "threshold %.0f%%)\n",
                  key.c_str(), 100.0 * (1.0 - *now / *base), *base, *now,
                  kWarnPct);
    }
  }
  // Stage p99 latencies: warn when a stage got more than 15% slower.
  // Keys come from the baseline so a stage vanishing reads as malformed,
  // not silently skipped.
  for (const char* stage :
       {"embed", "predict", "match", "attribute", "dispatch"}) {
    const std::string key = std::string("stage_") + stage + "_p99_ms";
    const auto base = json_field(*baseline, key.c_str());
    if (!base.has_value()) {
      continue;  // baseline predates this stage's histogram; nothing to diff
    }
    const auto now = json_field(*fresh, key.c_str());
    if (!now.has_value()) {
      fail("fresh bench summary missing " + key, 1, *fresh);
      continue;
    }
    ++compared;
    if (*base > 0.0 && *now > *base * (1.0 + kWarnPct / 100.0)) {
      ++warned;
      std::printf("WARN: %s rose %.1f%% (%.3f -> %.3f ms, threshold "
                  "%.0f%%)\n",
                  key.c_str(), 100.0 * (*now / *base - 1.0), *base, *now,
                  kWarnPct);
    }
  }
  std::printf("bench diff %s vs %s: %zu series compared, %zu regression "
              "warnings\n",
              baseline_path.c_str(), fresh_path.c_str(), compared, warned);
  return failures == 0 ? 0 : 1;
}

int check_flight(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open flight file %s\n", path.c_str());
    return 2;
  }
  std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (bytes.size() >= 8 && std::memcmp(bytes.data(), "MFCPFLT1", 8) == 0) {
    return check_flight_raw(path, bytes);
  }
  return check_flight_jsonl(path);
}

// ----------------------------------------------------------- --storage --
// Independent re-implementations of the durability layer's formats (the
// layouts documented in src/storage/*.hpp). Deliberately not linked
// against mfcp_storage: the writer's own code never vouches for its own
// output.

constexpr std::size_t kWalHeaderBytes = 8;    // len u32 | crc u32
constexpr std::size_t kWalPayloadBytes = 49;  // fixed record payload

/// IEEE 802.3 CRC32 (reflected, init/final 0xFFFFFFFF).
std::uint32_t wal_crc32(const unsigned char* data, std::size_t n) {
  static std::uint32_t table[256];
  static bool ready = false;
  if (!ready) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    ready = true;
  }
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t load_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t load_u64le(const unsigned char* p) {
  return static_cast<std::uint64_t>(load_u32le(p)) |
         static_cast<std::uint64_t>(load_u32le(p + 4)) << 32;
}

int check_storage(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::fprintf(stderr, "cannot open storage dir %s\n", dir.c_str());
    return 2;
  }

  // --- wal/wal-*.log ------------------------------------------------------
  std::map<unsigned, fs::path> segments;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(dir) / "wal", ec)) {
    const std::string name = entry.path().filename().string();
    unsigned idx = 0;
    char overflow = 0;
    if (name.size() == 16 &&
        std::sscanf(name.c_str(), "wal-%8u.log%c", &idx, &overflow) == 1) {
      segments[idx] = entry.path();
    }
  }
  std::uint64_t wal_frames = 0;
  std::uint64_t last_seq = 0;
  std::set<std::uint64_t> accepted_ids;
  std::set<std::uint64_t> terminal_ids;
  std::size_t seg_seen = 0;
  for (const auto& [idx, path] : segments) {
    ++seg_seen;
    const bool newest = seg_seen == segments.size();
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      std::fprintf(stderr, "cannot open WAL segment %s\n", path.c_str());
      return 2;
    }
    std::vector<unsigned char> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    std::size_t off = 0;
    while (off < bytes.size()) {
      std::string bad;  // first grammar violation at this offset
      if (off + kWalHeaderBytes + kWalPayloadBytes > bytes.size()) {
        bad = "partial frame";
      } else if (load_u32le(&bytes[off]) != kWalPayloadBytes) {
        bad = "frame length is not the fixed payload size";
      } else if (load_u32le(&bytes[off + 4]) !=
                 wal_crc32(&bytes[off + kWalHeaderBytes],
                           kWalPayloadBytes)) {
        bad = "payload CRC mismatch";
      } else {
        const unsigned char* payload = &bytes[off + kWalHeaderBytes];
        const unsigned type = payload[0];
        if (type < 1 || type > 4) {
          bad = "unknown record type " + std::to_string(type);
        }
      }
      if (!bad.empty()) {
        // A crash mid-append legitimately tears the newest segment's
        // tail; anywhere else the log is corrupt.
        if (newest) {
          std::printf("storage: note: torn tail in %s (%zu bytes at "
                      "offset %zu: %s)\n",
                      path.filename().string().c_str(), bytes.size() - off,
                      off, bad.c_str());
        } else {
          fail("WAL corruption in sealed segment (" + bad + ")", off,
               path.string());
        }
        break;
      }
      const unsigned char* payload = &bytes[off + kWalHeaderBytes];
      const std::uint64_t seq = load_u64le(payload + 1);
      if (seq <= last_seq) {
        fail("WAL sequence not strictly increasing (" +
                 std::to_string(seq) + " after " +
                 std::to_string(last_seq) + ")",
             off, path.string());
      }
      last_seq = seq;
      const std::uint64_t task_id = load_u64le(payload + 9);
      if (payload[0] == 1) {
        accepted_ids.insert(task_id);
      } else {
        terminal_ids.insert(task_id);
      }
      ++wal_frames;
      off += kWalHeaderBytes + kWalPayloadBytes;
    }
  }
  std::size_t outstanding = 0;
  for (const std::uint64_t id : accepted_ids) {
    outstanding += terminal_ids.count(id) == 0 ? 1 : 0;
  }

  // --- checkpoints/ -------------------------------------------------------
  std::map<std::uint64_t, fs::path> snapshots;
  const fs::path ckpt_dir = fs::path(dir) / "checkpoints";
  for (const fs::directory_entry& entry :
       fs::directory_iterator(ckpt_dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long gen = 0;
    char overflow = 0;
    if (name.size() == 22 &&
        std::sscanf(name.c_str(), "snapshot-%8llu.ckpt%c", &gen,
                    &overflow) == 1) {
      snapshots[gen] = entry.path();
    }
  }
  // Every retained snapshot carries the wrapper header; remember each
  // generation's recorded wal_seq for the manifest cross-check.
  std::map<std::uint64_t, std::uint64_t> snapshot_wal_seq;
  for (const auto& [gen, path] : snapshots) {
    std::ifstream is(path);
    std::string magic;
    std::string seq_line;
    unsigned long long wal_seq = 0;
    if (!std::getline(is, magic) || magic != "mfcp-storage-snapshot 1") {
      fail("snapshot wrapper magic missing", 1, path.string());
      continue;
    }
    if (!std::getline(is, seq_line) ||
        std::sscanf(seq_line.c_str(), "wal_seq %llu", &wal_seq) != 1) {
      fail("snapshot wal_seq header missing", 2, path.string());
      continue;
    }
    snapshot_wal_seq[gen] = wal_seq;
  }
  std::uint64_t manifest_gen = 0;
  {
    const fs::path manifest = ckpt_dir / "MANIFEST";
    const bool have_manifest = fs::exists(manifest, ec);
    if (!have_manifest && !snapshots.empty()) {
      fail("snapshots on disk but no MANIFEST", 0, manifest.string());
    }
    if (have_manifest) {
      std::ifstream is(manifest);
      std::string magic;
      std::string gen_line;
      std::string snap_line;
      std::string seq_line;
      unsigned long long gen = 0;
      unsigned long long wal_seq = 0;
      char snap_name[64] = {0};
      if (!std::getline(is, magic) ||
          magic != "mfcp-storage-manifest 1" ||
          !std::getline(is, gen_line) ||
          std::sscanf(gen_line.c_str(), "generation %llu", &gen) != 1 ||
          !std::getline(is, snap_line) ||
          std::sscanf(snap_line.c_str(), "snapshot %63s", snap_name) != 1 ||
          !std::getline(is, seq_line) ||
          std::sscanf(seq_line.c_str(), "wal_seq %llu", &wal_seq) != 1) {
        fail("malformed MANIFEST", 0, manifest.string());
      } else {
        manifest_gen = gen;
        char expect[32];
        std::snprintf(expect, sizeof(expect), "snapshot-%08llu.ckpt", gen);
        if (std::strcmp(snap_name, expect) != 0) {
          fail("MANIFEST snapshot name does not match its generation", 3,
               snap_line);
        }
        const auto it = snapshot_wal_seq.find(gen);
        if (snapshots.count(gen) == 0) {
          fail("MANIFEST points at a missing snapshot", 3, snap_line);
        } else if (it != snapshot_wal_seq.end() && it->second != wal_seq) {
          fail("MANIFEST wal_seq disagrees with its snapshot's header", 4,
               seq_line);
        }
      }
    }
  }

  // --- journal/chunk-*.jsonl ----------------------------------------------
  std::map<long long, fs::path> chunk_files;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(dir) / "journal", ec)) {
    const std::string name = entry.path().filename().string();
    long long k = 0;
    char overflow = 0;
    if (name.size() == 20 &&
        std::sscanf(name.c_str(), "chunk-%8lld.jsonl%c", &k, &overflow) ==
            1) {
      chunk_files[k] = entry.path();
    }
  }
  std::uint64_t chunk_records = 0;
  std::size_t chunk_seen = 0;
  for (const auto& [k, path] : chunk_files) {
    ++chunk_seen;
    const bool newest = chunk_seen == chunk_files.size();
    std::ifstream is(path);
    std::string line;
    std::size_t line_no = 0;
    std::uint64_t records = 0;
    std::uint64_t payload_bytes = 0;
    bool footer_seen = false;
    while (std::getline(is, line)) {
      ++line_no;
      if (footer_seen) {
        fail("journal chunk has content after its index footer", line_no,
             path.string());
        break;
      }
      if (line.rfind("#mfcp-chunk-index v1", 0) == 0) {
        long long fk = 0;
        unsigned long long frecords = 0;
        unsigned long long fbytes = 0;
        double fmin = 0.0;
        double fmax = 0.0;
        if (std::sscanf(line.c_str(),
                        "#mfcp-chunk-index v1 chunk=%lld records=%llu "
                        "min_hours=%lg max_hours=%lg payload_bytes=%llu",
                        &fk, &frecords, &fmin, &fmax, &fbytes) != 5) {
          fail("malformed chunk index footer", line_no, line);
        } else {
          if (fk != k) {
            fail("footer chunk id does not match the filename", line_no,
                 line);
          }
          if (frecords != records) {
            fail("footer record count " + std::to_string(frecords) +
                     " != recounted " + std::to_string(records),
                 line_no, line);
          }
          if (fbytes != payload_bytes) {
            fail("footer payload_bytes " + std::to_string(fbytes) +
                     " != recounted " + std::to_string(payload_bytes),
                 line_no, line);
          }
          if (records > 0 && fmin > fmax) {
            fail("footer min_hours exceeds max_hours", line_no, line);
          }
        }
        footer_seen = true;
        continue;
      }
      if (line.empty() || line.front() != '{' || line.back() != '}') {
        fail("journal chunk line is neither a JSON record nor the footer",
             line_no, path.string());
        continue;
      }
      ++records;
      payload_bytes += line.size() + 1;
    }
    if (!footer_seen && !newest) {
      fail("sealed journal chunk is missing its index footer", line_no,
           path.string());
    }
    chunk_records += records;
  }

  std::printf("storage %s: wal segments=%zu frames=%" PRIu64
              " (accepted=%zu terminal=%zu outstanding=%zu), "
              "checkpoints=%zu (manifest generation %" PRIu64
              "), journal chunks=%zu records=%" PRIu64 "\n",
              dir.c_str(), segments.size(), wal_frames,
              accepted_ids.size(), terminal_ids.size(), outstanding,
              snapshots.size(), manifest_gen, chunk_files.size(),
              chunk_records);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string exposition_path;
  std::string journal_path;
  std::string tasktraces_path;
  std::string flight_path;
  std::string profile_path;
  std::string bench_baseline_path;
  std::string bench_fresh_path;
  std::string storage_dir;
  bool require_attribution = false;
  bool require_gateway = false;
  bool require_slo = false;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--exposition") == 0 && k + 1 < argc) {
      exposition_path = argv[++k];
    } else if (std::strcmp(argv[k], "--journal") == 0 && k + 1 < argc) {
      journal_path = argv[++k];
    } else if (std::strcmp(argv[k], "--tasktraces") == 0 && k + 1 < argc) {
      tasktraces_path = argv[++k];
    } else if (std::strcmp(argv[k], "--flight") == 0 && k + 1 < argc) {
      flight_path = argv[++k];
    } else if (std::strcmp(argv[k], "--profile") == 0 && k + 1 < argc) {
      profile_path = argv[++k];
    } else if (std::strcmp(argv[k], "--bench-diff") == 0 && k + 2 < argc) {
      bench_baseline_path = argv[++k];
      bench_fresh_path = argv[++k];
    } else if (std::strcmp(argv[k], "--storage") == 0 && k + 1 < argc) {
      storage_dir = argv[++k];
    } else if (std::strcmp(argv[k], "--require-attribution") == 0) {
      require_attribution = true;
    } else if (std::strcmp(argv[k], "--require-gateway") == 0) {
      require_gateway = true;
    } else if (std::strcmp(argv[k], "--require-slo") == 0) {
      require_slo = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--exposition <file>] [--journal <file>] "
                   "[--tasktraces <file>] [--flight <file>] "
                   "[--profile <file>] [--bench-diff <baseline> <fresh>] "
                   "[--storage <dir>] "
                   "[--require-attribution] [--require-gateway] "
                   "[--require-slo]\n",
                   argv[0]);
      return 2;
    }
  }
  if (exposition_path.empty() && journal_path.empty() &&
      tasktraces_path.empty() && flight_path.empty() &&
      profile_path.empty() && bench_baseline_path.empty() &&
      storage_dir.empty()) {
    std::fprintf(stderr, "nothing to check (see --help usage)\n");
    return 2;
  }
  int rc = 0;
  if (!exposition_path.empty()) {
    rc = std::max(rc, check_exposition(exposition_path, require_gateway,
                                       require_slo));
  }
  if (!journal_path.empty()) {
    rc = std::max(rc, check_journal(journal_path, require_attribution));
  }
  if (!tasktraces_path.empty()) {
    rc = std::max(rc, check_tasktraces(tasktraces_path));
  }
  if (!flight_path.empty()) {
    rc = std::max(rc, check_flight(flight_path));
  }
  if (!profile_path.empty()) {
    rc = std::max(rc, check_profile(profile_path));
  }
  if (!bench_baseline_path.empty()) {
    rc = std::max(rc, check_bench_diff(bench_baseline_path,
                                       bench_fresh_path));
  }
  if (!storage_dir.empty()) {
    rc = std::max(rc, check_storage(storage_dir));
  }
  if (rc == 0) {
    std::printf("obs_selfcheck: all checks passed\n");
  }
  return rc;
}
