// Closed-loop HTTP load generator for the platform gateway.
//
// N worker threads each run a submit loop against POST /submit: draw a
// random task descriptor, send it, record the outcome and latency, and
// (when --rate is set) pace themselves against a shared schedule so the
// offered load approximates the requested arrivals/second; --rate 0 is
// the pure closed loop, each worker submitting as fast as its previous
// response returns.
//
// After the configured duration the generator stops offering load, waits
// for the platform to drain (polling GET /stats until nothing is queued
// or --drain-seconds elapses), spot-checks a few accepted ids against
// GET /task/<id>, and prints a deterministic-format report:
//
//   loadgen: requests=... accepted=... rejected_429=... ...
//   loadgen: latency_ms p50=... p90=... p99=... max=...
//   loadgen: conservation submitted=... ... : OK
//
// The conservation line asserts the gateway's core promise: every
// accepted task is in exactly one of queued / matched / dispatched /
// expired / rejected — accepted work is never silently lost. Exit code 0
// on success, 1 on a conservation or validation failure, 2 on usage or
// total transport failure.
//
// Restart verification: --resume-report <prior.json> reads a previous
// run's --report-json output and asserts the (restarted) platform still
// accounts for every acceptance the prior run observed:
//
//   recovered_tasks + recovered_terminal >= prior accepted
//
// (>=, not ==: the WAL append precedes the HTTP 200, so a kill between
// the two leaves acceptances the client never saw). The merged totals
// across both runs are printed and folded into this run's report JSON.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/http_client.hpp"
#include "net/json.hpp"
#include "support/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  int concurrency = 4;
  double rate = 0.0;  // offered arrivals/second across all workers; 0 = max
  double duration_seconds = 5.0;
  double drain_seconds = 15.0;
  int timeout_ms = 5000;
  std::uint64_t seed = 0x10adULL;
  /// Distinct client identities to spread submissions across (worker w
  /// submits as "client-<w mod clients>"). 0 = no client field, so every
  /// submission lands in the gateway's anonymous bucket.
  int clients = 0;
  /// When set, the final report is also written as one JSON line — the
  /// same numbers the human-readable loadgen: lines print — so CI can
  /// archive and diff runs without scraping stdout.
  std::string report_json_path;
  /// When set, a prior run's report JSON: this run additionally asserts
  /// the platform's WAL recovery accounts for every acceptance that run
  /// observed, and merges the two runs' counts in the output.
  std::string resume_report_path;
};

/// One accepted submit, kept so the report can attribute its slowest
/// requests to a specific task trace (GET /trace/<trace_id>).
struct AcceptedSample {
  double ms = 0.0;
  std::uint64_t id = 0;
  std::string trace_id;  // 16-hex from the submit response
};

struct WorkerStats {
  std::uint64_t requests = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_429 = 0;
  std::uint64_t throttled_429 = 0;  // the rate-limited subset of the 429s
  std::uint64_t http_other = 0;
  std::uint64_t transport_errors = 0;
  std::vector<double> latencies_ms;
  std::vector<std::uint64_t> accepted_ids;
  std::vector<AcceptedSample> accepted_samples;
};

std::string random_task_body(mfcp::Rng& rng, const std::string& client) {
  static const char* kFamilies[] = {"cnn", "transformer", "rnn", "mlp"};
  const std::uint64_t f = rng.uniform_index(4);
  // Family/dataset pairings mirror the simulator: CV models on image
  // datasets, NLP models on Europarl.
  const char* dataset = "cifar-10";
  if (f == 1 || f == 2) {
    dataset = "europarl";
  } else if (rng.bernoulli(0.3)) {
    dataset = "imagenet";
  }
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"family\":\"%s\",\"dataset\":\"%s\",\"depth\":%d,"
                "\"width\":%d,\"batch_size\":%d,\"dataset_fraction\":%.2f",
                kFamilies[f], dataset,
                static_cast<int>(2 + rng.uniform_index(30)),
                static_cast<int>(32 + 32 * rng.uniform_index(16)),
                static_cast<int>(16 + 16 * rng.uniform_index(16)),
                0.1 + 0.9 * rng.uniform());
  std::string body = buf;
  if (!client.empty()) {
    body += ",\"client\":\"" + client + "\"";
  }
  body += "}";
  return body;
}

void submit_loop(const Options& opt, int worker, Clock::time_point t0,
                 std::atomic<std::uint64_t>& ticket, mfcp::Rng rng,
                 WorkerStats& stats) {
  const auto deadline =
      t0 + std::chrono::duration<double>(opt.duration_seconds);
  // Stable per-worker identity: with --clients K the workers cycle
  // through client-0 .. client-(K-1), exercising the gateway's per-client
  // token buckets.
  std::string client;
  if (opt.clients > 0) {
    client = "client-" + std::to_string(worker % opt.clients);
  }
  for (;;) {
    if (opt.rate > 0.0) {
      // Shared open-loop schedule: ticket i fires at t0 + i/rate.
      const std::uint64_t i =
          ticket.fetch_add(1, std::memory_order_relaxed);
      const auto fire =
          t0 + std::chrono::duration<double>(static_cast<double>(i) /
                                             opt.rate);
      if (fire >= deadline) {
        return;
      }
      std::this_thread::sleep_until(fire);
    } else if (Clock::now() >= deadline) {
      return;
    }

    const std::string body = random_task_body(rng, client);
    const auto start = Clock::now();
    const mfcp::net::ClientResponse r =
        mfcp::net::http_call(opt.host, static_cast<std::uint16_t>(opt.port),
                             "POST", "/submit", body, opt.timeout_ms);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    ++stats.requests;
    if (!r.ok) {
      ++stats.transport_errors;
      continue;
    }
    stats.latencies_ms.push_back(ms);
    if (r.status == 200) {
      ++stats.accepted;
      const auto fields = mfcp::net::parse_json_object(r.body);
      if (fields.has_value()) {
        const auto it = fields->find("id");
        if (it != fields->end() &&
            it->second.kind == mfcp::net::JsonValue::Kind::kNumber) {
          const auto id = static_cast<std::uint64_t>(it->second.num);
          stats.accepted_ids.push_back(id);
          AcceptedSample sample;
          sample.ms = ms;
          sample.id = id;
          const auto trace = fields->find("trace_id");
          if (trace != fields->end() &&
              trace->second.kind == mfcp::net::JsonValue::Kind::kString) {
            sample.trace_id = trace->second.str;
          }
          stats.accepted_samples.push_back(std::move(sample));
        }
      }
    } else if (r.status == 429) {
      ++stats.rejected_429;
      const auto fields = mfcp::net::parse_json_object(r.body);
      if (fields.has_value()) {
        const auto it = fields->find("throttled");
        if (it != fields->end() &&
            it->second.kind == mfcp::net::JsonValue::Kind::kBool &&
            it->second.boolean) {
          ++stats.throttled_429;
        }
      }
      // Honor a fraction of the advised backoff so a saturated platform
      // is not hammered at full closed-loop speed, while still probing
      // recovery faster than a compliant client would.
      const std::string_view retry = r.header("retry-after");
      double seconds = 0.05;
      if (!retry.empty()) {
        seconds = std::min(0.25, std::atof(std::string(retry).c_str()) * 0.1);
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    } else {
      ++stats.http_other;
    }
  }
}

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::uint64_t stat_u64(const std::map<std::string, mfcp::net::JsonValue>& s,
                       const std::string& key) {
  const auto it = s.find(key);
  if (it == s.end() || it->second.kind != mfcp::net::JsonValue::Kind::kNumber) {
    return 0;
  }
  return static_cast<std::uint64_t>(it->second.num);
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port P [--host H] [--concurrency N] [--rate R]\n"
      "          [--duration-seconds S] [--drain-seconds S]\n"
      "          [--timeout-ms MS] [--seed N] [--clients K]\n"
      "          [--report-json <path>] [--resume-report <prior.json>]\n",
      argv0);
  return 2;
}

/// Reads the prior run's report JSON (one flat object) into `fields`.
bool read_report_json(const std::string& path,
                      std::map<std::string, mfcp::net::JsonValue>& fields) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::string body;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    body.append(buf, n);
  }
  std::fclose(f);
  const auto parsed = mfcp::net::parse_json_object(body);
  if (!parsed.has_value()) {
    return false;
  }
  fields = *parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--port") == 0 && k + 1 < argc) {
      opt.port = std::atoi(argv[++k]);
    } else if (std::strcmp(argv[k], "--host") == 0 && k + 1 < argc) {
      opt.host = argv[++k];
    } else if (std::strcmp(argv[k], "--concurrency") == 0 && k + 1 < argc) {
      opt.concurrency = std::atoi(argv[++k]);
    } else if (std::strcmp(argv[k], "--rate") == 0 && k + 1 < argc) {
      opt.rate = std::atof(argv[++k]);
    } else if (std::strcmp(argv[k], "--duration-seconds") == 0 &&
               k + 1 < argc) {
      opt.duration_seconds = std::atof(argv[++k]);
    } else if (std::strcmp(argv[k], "--drain-seconds") == 0 && k + 1 < argc) {
      opt.drain_seconds = std::atof(argv[++k]);
    } else if (std::strcmp(argv[k], "--timeout-ms") == 0 && k + 1 < argc) {
      opt.timeout_ms = std::atoi(argv[++k]);
    } else if (std::strcmp(argv[k], "--seed") == 0 && k + 1 < argc) {
      opt.seed = std::strtoull(argv[++k], nullptr, 10);
    } else if (std::strcmp(argv[k], "--clients") == 0 && k + 1 < argc) {
      opt.clients = std::atoi(argv[++k]);
    } else if (std::strcmp(argv[k], "--report-json") == 0 && k + 1 < argc) {
      opt.report_json_path = argv[++k];
    } else if (std::strcmp(argv[k], "--resume-report") == 0 && k + 1 < argc) {
      opt.resume_report_path = argv[++k];
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.port <= 0 || opt.port > 65535 || opt.concurrency < 1 ||
      opt.clients < 0) {
    return usage(argv[0]);
  }

  // Load the prior run's report up front so a bad path fails before any
  // load is offered.
  std::map<std::string, mfcp::net::JsonValue> prior_report;
  if (!opt.resume_report_path.empty() &&
      !read_report_json(opt.resume_report_path, prior_report)) {
    std::fprintf(stderr, "loadgen: cannot read prior report %s\n",
                 opt.resume_report_path.c_str());
    return 2;
  }

  std::printf("loadgen: target http://%s:%d concurrency=%d rate=%.3g "
              "duration_seconds=%.3g\n",
              opt.host.c_str(), opt.port, opt.concurrency, opt.rate,
              opt.duration_seconds);

  mfcp::Rng root(opt.seed);
  std::vector<WorkerStats> per_worker(
      static_cast<std::size_t>(opt.concurrency));
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> ticket{0};
  const auto t0 = Clock::now();
  for (int w = 0; w < opt.concurrency; ++w) {
    workers.emplace_back(submit_loop, std::cref(opt), w, t0,
                         std::ref(ticket), root.split(),
                         std::ref(per_worker[w]));
  }
  for (std::thread& t : workers) {
    t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  WorkerStats total;
  for (const WorkerStats& w : per_worker) {
    total.requests += w.requests;
    total.accepted += w.accepted;
    total.rejected_429 += w.rejected_429;
    total.throttled_429 += w.throttled_429;
    total.http_other += w.http_other;
    total.transport_errors += w.transport_errors;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              w.latencies_ms.begin(), w.latencies_ms.end());
    total.accepted_ids.insert(total.accepted_ids.end(),
                              w.accepted_ids.begin(), w.accepted_ids.end());
    total.accepted_samples.insert(total.accepted_samples.end(),
                                  w.accepted_samples.begin(),
                                  w.accepted_samples.end());
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());

  std::printf("loadgen: requests=%" PRIu64 " accepted=%" PRIu64
              " rejected_429=%" PRIu64 " throttled_429=%" PRIu64
              " http_other=%" PRIu64 " transport_errors=%" PRIu64 "\n",
              total.requests, total.accepted, total.rejected_429,
              total.throttled_429, total.http_other,
              total.transport_errors);
  std::printf("loadgen: achieved_qps=%.2f\n",
              elapsed > 0.0 ? static_cast<double>(total.requests) / elapsed
                            : 0.0);
  std::printf("loadgen: latency_ms p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
              quantile(total.latencies_ms, 0.50),
              quantile(total.latencies_ms, 0.90),
              quantile(total.latencies_ms, 0.99),
              total.latencies_ms.empty() ? 0.0
                                         : total.latencies_ms.back());

  // Slowest accepted submits, with their trace ids, so a latency outlier
  // in a smoke run is attributable to one task's span chain.
  std::sort(total.accepted_samples.begin(), total.accepted_samples.end(),
            [](const AcceptedSample& a, const AcceptedSample& b) {
              return a.ms > b.ms;
            });
  const std::size_t slow_k =
      std::min<std::size_t>(5, total.accepted_samples.size());
  for (std::size_t i = 0; i < slow_k; ++i) {
    const AcceptedSample& s = total.accepted_samples[i];
    std::printf("loadgen: slowest[%zu] ms=%.3f id=%" PRIu64 " trace=%s\n", i,
                s.ms, s.id,
                s.trace_id.empty() ? "-" : s.trace_id.c_str());
  }

  if (total.requests == 0 || total.transport_errors == total.requests) {
    std::fprintf(stderr, "loadgen: no successful requests\n");
    return 2;
  }

  // Drain: stop offering load and wait for the platform to settle.
  const auto drain_start = Clock::now();
  std::map<std::string, mfcp::net::JsonValue> stats;
  for (;;) {
    const mfcp::net::ClientResponse r =
        mfcp::net::http_call(opt.host, static_cast<std::uint16_t>(opt.port),
                             "GET", "/stats", {}, opt.timeout_ms);
    if (r.ok && r.status == 200) {
      const auto parsed = mfcp::net::parse_json_object(r.body);
      if (parsed.has_value()) {
        stats = *parsed;
        if (stat_u64(stats, "tasks_queued") == 0 &&
            stat_u64(stats, "inbox_depth") == 0) {
          break;
        }
      }
    }
    if (std::chrono::duration<double>(Clock::now() - drain_start).count() >=
        opt.drain_seconds) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  const double drain_waited =
      std::chrono::duration<double>(Clock::now() - drain_start).count();

  const std::uint64_t submitted = stat_u64(stats, "tasks_submitted");
  const std::uint64_t queued = stat_u64(stats, "tasks_queued");
  const std::uint64_t matched = stat_u64(stats, "tasks_matched");
  const std::uint64_t dispatched = stat_u64(stats, "tasks_dispatched");
  const std::uint64_t expired = stat_u64(stats, "tasks_expired");
  const std::uint64_t rejected = stat_u64(stats, "tasks_rejected");
  std::printf("loadgen: drain queued=%" PRIu64 " inbox=%" PRIu64
              " waited_seconds=%.2f\n",
              queued, stat_u64(stats, "inbox_depth"), drain_waited);

  // Spot-check a few accepted ids end to end. A 410 is not a failure: the
  // gateway's bounded status table evicts terminal tasks FIFO, so under
  // enough churn an old id is legitimately gone.
  std::uint64_t status_checked = 0;
  std::uint64_t status_bad = 0;
  std::uint64_t status_evicted = 0;
  const std::size_t step =
      std::max<std::size_t>(1, total.accepted_ids.size() / 16);
  for (std::size_t i = 0; i < total.accepted_ids.size(); i += step) {
    const std::uint64_t id = total.accepted_ids[i];
    const mfcp::net::ClientResponse r = mfcp::net::http_call(
        opt.host, static_cast<std::uint16_t>(opt.port), "GET",
        "/task/" + std::to_string(id), {}, opt.timeout_ms);
    ++status_checked;
    if (r.ok && r.status == 410) {
      ++status_evicted;
      continue;
    }
    if (!r.ok || r.status != 200) {
      ++status_bad;
      continue;
    }
    const auto parsed = mfcp::net::parse_json_object(r.body);
    if (!parsed.has_value() || stat_u64(*parsed, "id") != id) {
      ++status_bad;
    }
  }
  std::printf("loadgen: status_checked=%" PRIu64 " status_bad=%" PRIu64
              " status_evicted=%" PRIu64 "\n",
              status_checked, status_bad, status_evicted);

  // Conservation: every accepted task is in exactly one lifecycle state,
  // and the platform accepted at least what this client saw accepted
  // (other clients may add to `submitted`; nothing may vanish from it).
  const std::uint64_t accounted =
      queued + matched + dispatched + expired + rejected;
  const bool conserved =
      accounted == submitted && submitted >= total.accepted;
  std::printf("loadgen: conservation submitted=%" PRIu64 " queued=%" PRIu64
              " matched=%" PRIu64 " dispatched=%" PRIu64 " expired=%" PRIu64
              " rejected=%" PRIu64 " : %s\n",
              submitted, queued, matched, dispatched, expired, rejected,
              conserved ? "OK" : "FAILED");

  // Restart verification: every acceptance the prior run observed must be
  // covered by this incarnation's WAL recovery — either replayed into the
  // queue (recovered_tasks) or already terminal in the log
  // (recovered_terminal). >= because a kill between the WAL append and
  // the HTTP 200 leaves acceptances the prior client never counted.
  const std::uint64_t prior_accepted = stat_u64(prior_report, "accepted");
  const std::uint64_t recovered_tasks = stat_u64(stats, "recovered_tasks");
  const std::uint64_t recovered_terminal =
      stat_u64(stats, "recovered_terminal");
  bool resume_ok = true;
  if (!opt.resume_report_path.empty()) {
    resume_ok = recovered_tasks + recovered_terminal >= prior_accepted;
    std::printf("loadgen: resume prior_accepted=%" PRIu64
                " recovered_tasks=%" PRIu64 " recovered_terminal=%" PRIu64
                " : %s\n",
                prior_accepted, recovered_tasks, recovered_terminal,
                resume_ok ? "OK" : "FAILED");
    std::printf("loadgen: merged accepted=%" PRIu64 " requests=%" PRIu64
                "\n",
                prior_accepted + total.accepted,
                stat_u64(prior_report, "requests") + total.requests);
  }

  if (!opt.report_json_path.empty()) {
    FILE* report = std::fopen(opt.report_json_path.c_str(), "w");
    if (report == nullptr) {
      std::fprintf(stderr, "loadgen: cannot write report to %s\n",
                   opt.report_json_path.c_str());
      return 2;
    }
    std::fprintf(
        report,
        "{\"record\":\"loadgen_report\",\"requests\":%" PRIu64
        ",\"accepted\":%" PRIu64 ",\"rejected_429\":%" PRIu64
        ",\"throttled_429\":%" PRIu64 ",\"http_other\":%" PRIu64
        ",\"transport_errors\":%" PRIu64
        ",\"achieved_qps\":%.6g,\"latency_p50_ms\":%.6g"
        ",\"latency_p90_ms\":%.6g,\"latency_p99_ms\":%.6g"
        ",\"latency_max_ms\":%.6g,\"status_checked\":%" PRIu64
        ",\"status_bad\":%" PRIu64 ",\"status_evicted_410\":%" PRIu64
        ",\"submitted\":%" PRIu64 ",\"queued\":%" PRIu64
        ",\"matched\":%" PRIu64 ",\"dispatched\":%" PRIu64
        ",\"expired\":%" PRIu64 ",\"rejected\":%" PRIu64
        ",\"conserved\":%s",
        total.requests, total.accepted, total.rejected_429,
        total.throttled_429, total.http_other, total.transport_errors,
        elapsed > 0.0 ? static_cast<double>(total.requests) / elapsed : 0.0,
        quantile(total.latencies_ms, 0.50),
        quantile(total.latencies_ms, 0.90),
        quantile(total.latencies_ms, 0.99),
        total.latencies_ms.empty() ? 0.0 : total.latencies_ms.back(),
        status_checked, status_bad, status_evicted, submitted, queued,
        matched, dispatched, expired, rejected,
        conserved ? "true" : "false");
    if (!opt.resume_report_path.empty()) {
      std::fprintf(report,
                   ",\"prior_accepted\":%" PRIu64
                   ",\"recovered_tasks\":%" PRIu64
                   ",\"recovered_terminal\":%" PRIu64
                   ",\"merged_accepted\":%" PRIu64
                   ",\"resume_conserved\":%s",
                   prior_accepted, recovered_tasks, recovered_terminal,
                   prior_accepted + total.accepted,
                   resume_ok ? "true" : "false");
    }
    std::fprintf(report, "}\n");
    std::fclose(report);
    std::printf("loadgen: report written to %s\n",
                opt.report_json_path.c_str());
  }

  if (!conserved || !resume_ok || status_bad != 0) {
    return 1;
  }
  return 0;
}
