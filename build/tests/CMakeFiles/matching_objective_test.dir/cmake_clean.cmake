file(REMOVE_RECURSE
  "CMakeFiles/matching_objective_test.dir/matching_objective_test.cpp.o"
  "CMakeFiles/matching_objective_test.dir/matching_objective_test.cpp.o.d"
  "matching_objective_test"
  "matching_objective_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_objective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
