file(REMOVE_RECURSE
  "CMakeFiles/mfcp_core_test.dir/mfcp_core_test.cpp.o"
  "CMakeFiles/mfcp_core_test.dir/mfcp_core_test.cpp.o.d"
  "mfcp_core_test"
  "mfcp_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfcp_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
