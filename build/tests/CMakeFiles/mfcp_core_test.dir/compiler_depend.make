# Empty compiler generated dependencies file for mfcp_core_test.
# This may be replaced when dependencies are built.
