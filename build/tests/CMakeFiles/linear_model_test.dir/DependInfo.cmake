
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linear_model_test.cpp" "tests/CMakeFiles/linear_model_test.dir/linear_model_test.cpp.o" "gcc" "tests/CMakeFiles/linear_model_test.dir/linear_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mfcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
