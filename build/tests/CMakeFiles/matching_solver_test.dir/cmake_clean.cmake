file(REMOVE_RECURSE
  "CMakeFiles/matching_solver_test.dir/matching_solver_test.cpp.o"
  "CMakeFiles/matching_solver_test.dir/matching_solver_test.cpp.o.d"
  "matching_solver_test"
  "matching_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
