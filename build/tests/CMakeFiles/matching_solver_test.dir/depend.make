# Empty dependencies file for matching_solver_test.
# This may be replaced when dependencies are built.
