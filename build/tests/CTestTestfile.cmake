# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[support_test]=] "/root/repo/build/tests/support_test")
set_tests_properties([=[support_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;mfcp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[parallel_test]=] "/root/repo/build/tests/parallel_test")
set_tests_properties([=[parallel_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;mfcp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[linalg_test]=] "/root/repo/build/tests/linalg_test")
set_tests_properties([=[linalg_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;mfcp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[autograd_test]=] "/root/repo/build/tests/autograd_test")
set_tests_properties([=[autograd_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;mfcp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[nn_test]=] "/root/repo/build/tests/nn_test")
set_tests_properties([=[nn_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;mfcp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[sim_test]=] "/root/repo/build/tests/sim_test")
set_tests_properties([=[sim_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;mfcp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[matching_objective_test]=] "/root/repo/build/tests/matching_objective_test")
set_tests_properties([=[matching_objective_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;mfcp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[matching_solver_test]=] "/root/repo/build/tests/matching_solver_test")
set_tests_properties([=[matching_solver_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;mfcp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[diff_test]=] "/root/repo/build/tests/diff_test")
set_tests_properties([=[diff_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;mfcp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[mfcp_core_test]=] "/root/repo/build/tests/mfcp_core_test")
set_tests_properties([=[mfcp_core_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;mfcp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[integration_test]=] "/root/repo/build/tests/integration_test")
set_tests_properties([=[integration_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;mfcp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[linear_model_test]=] "/root/repo/build/tests/linear_model_test")
set_tests_properties([=[linear_model_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;mfcp_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[trainer_options_test]=] "/root/repo/build/tests/trainer_options_test")
set_tests_properties([=[trainer_options_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;mfcp_test;/root/repo/tests/CMakeLists.txt;0;")
