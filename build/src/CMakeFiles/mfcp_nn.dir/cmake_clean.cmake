file(REMOVE_RECURSE
  "CMakeFiles/mfcp_nn.dir/nn/activations.cpp.o"
  "CMakeFiles/mfcp_nn.dir/nn/activations.cpp.o.d"
  "CMakeFiles/mfcp_nn.dir/nn/init.cpp.o"
  "CMakeFiles/mfcp_nn.dir/nn/init.cpp.o.d"
  "CMakeFiles/mfcp_nn.dir/nn/linear.cpp.o"
  "CMakeFiles/mfcp_nn.dir/nn/linear.cpp.o.d"
  "CMakeFiles/mfcp_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/mfcp_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/mfcp_nn.dir/nn/mlp.cpp.o"
  "CMakeFiles/mfcp_nn.dir/nn/mlp.cpp.o.d"
  "CMakeFiles/mfcp_nn.dir/nn/optimizer.cpp.o"
  "CMakeFiles/mfcp_nn.dir/nn/optimizer.cpp.o.d"
  "CMakeFiles/mfcp_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/mfcp_nn.dir/nn/serialize.cpp.o.d"
  "libmfcp_nn.a"
  "libmfcp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfcp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
