file(REMOVE_RECURSE
  "libmfcp_nn.a"
)
