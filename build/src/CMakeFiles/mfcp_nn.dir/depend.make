# Empty dependencies file for mfcp_nn.
# This may be replaced when dependencies are built.
