file(REMOVE_RECURSE
  "CMakeFiles/mfcp_sim.dir/sim/cluster.cpp.o"
  "CMakeFiles/mfcp_sim.dir/sim/cluster.cpp.o.d"
  "CMakeFiles/mfcp_sim.dir/sim/dataset.cpp.o"
  "CMakeFiles/mfcp_sim.dir/sim/dataset.cpp.o.d"
  "CMakeFiles/mfcp_sim.dir/sim/embedding.cpp.o"
  "CMakeFiles/mfcp_sim.dir/sim/embedding.cpp.o.d"
  "CMakeFiles/mfcp_sim.dir/sim/failure.cpp.o"
  "CMakeFiles/mfcp_sim.dir/sim/failure.cpp.o.d"
  "CMakeFiles/mfcp_sim.dir/sim/platform.cpp.o"
  "CMakeFiles/mfcp_sim.dir/sim/platform.cpp.o.d"
  "CMakeFiles/mfcp_sim.dir/sim/speedup.cpp.o"
  "CMakeFiles/mfcp_sim.dir/sim/speedup.cpp.o.d"
  "CMakeFiles/mfcp_sim.dir/sim/task.cpp.o"
  "CMakeFiles/mfcp_sim.dir/sim/task.cpp.o.d"
  "libmfcp_sim.a"
  "libmfcp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfcp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
