# Empty dependencies file for mfcp_sim.
# This may be replaced when dependencies are built.
