file(REMOVE_RECURSE
  "libmfcp_sim.a"
)
