
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/CMakeFiles/mfcp_sim.dir/sim/cluster.cpp.o" "gcc" "src/CMakeFiles/mfcp_sim.dir/sim/cluster.cpp.o.d"
  "/root/repo/src/sim/dataset.cpp" "src/CMakeFiles/mfcp_sim.dir/sim/dataset.cpp.o" "gcc" "src/CMakeFiles/mfcp_sim.dir/sim/dataset.cpp.o.d"
  "/root/repo/src/sim/embedding.cpp" "src/CMakeFiles/mfcp_sim.dir/sim/embedding.cpp.o" "gcc" "src/CMakeFiles/mfcp_sim.dir/sim/embedding.cpp.o.d"
  "/root/repo/src/sim/failure.cpp" "src/CMakeFiles/mfcp_sim.dir/sim/failure.cpp.o" "gcc" "src/CMakeFiles/mfcp_sim.dir/sim/failure.cpp.o.d"
  "/root/repo/src/sim/platform.cpp" "src/CMakeFiles/mfcp_sim.dir/sim/platform.cpp.o" "gcc" "src/CMakeFiles/mfcp_sim.dir/sim/platform.cpp.o.d"
  "/root/repo/src/sim/speedup.cpp" "src/CMakeFiles/mfcp_sim.dir/sim/speedup.cpp.o" "gcc" "src/CMakeFiles/mfcp_sim.dir/sim/speedup.cpp.o.d"
  "/root/repo/src/sim/task.cpp" "src/CMakeFiles/mfcp_sim.dir/sim/task.cpp.o" "gcc" "src/CMakeFiles/mfcp_sim.dir/sim/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mfcp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
