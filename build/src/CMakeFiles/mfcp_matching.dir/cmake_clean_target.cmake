file(REMOVE_RECURSE
  "libmfcp_matching.a"
)
