# Empty compiler generated dependencies file for mfcp_matching.
# This may be replaced when dependencies are built.
