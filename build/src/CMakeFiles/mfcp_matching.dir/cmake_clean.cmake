file(REMOVE_RECURSE
  "CMakeFiles/mfcp_matching.dir/matching/barrier.cpp.o"
  "CMakeFiles/mfcp_matching.dir/matching/barrier.cpp.o.d"
  "CMakeFiles/mfcp_matching.dir/matching/entropy.cpp.o"
  "CMakeFiles/mfcp_matching.dir/matching/entropy.cpp.o.d"
  "CMakeFiles/mfcp_matching.dir/matching/objective.cpp.o"
  "CMakeFiles/mfcp_matching.dir/matching/objective.cpp.o.d"
  "CMakeFiles/mfcp_matching.dir/matching/penalty.cpp.o"
  "CMakeFiles/mfcp_matching.dir/matching/penalty.cpp.o.d"
  "CMakeFiles/mfcp_matching.dir/matching/problem.cpp.o"
  "CMakeFiles/mfcp_matching.dir/matching/problem.cpp.o.d"
  "CMakeFiles/mfcp_matching.dir/matching/rounding.cpp.o"
  "CMakeFiles/mfcp_matching.dir/matching/rounding.cpp.o.d"
  "CMakeFiles/mfcp_matching.dir/matching/smooth_objective.cpp.o"
  "CMakeFiles/mfcp_matching.dir/matching/smooth_objective.cpp.o.d"
  "CMakeFiles/mfcp_matching.dir/matching/solver_exact.cpp.o"
  "CMakeFiles/mfcp_matching.dir/matching/solver_exact.cpp.o.d"
  "CMakeFiles/mfcp_matching.dir/matching/solver_gd.cpp.o"
  "CMakeFiles/mfcp_matching.dir/matching/solver_gd.cpp.o.d"
  "CMakeFiles/mfcp_matching.dir/matching/solver_mirror.cpp.o"
  "CMakeFiles/mfcp_matching.dir/matching/solver_mirror.cpp.o.d"
  "libmfcp_matching.a"
  "libmfcp_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfcp_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
