
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/barrier.cpp" "src/CMakeFiles/mfcp_matching.dir/matching/barrier.cpp.o" "gcc" "src/CMakeFiles/mfcp_matching.dir/matching/barrier.cpp.o.d"
  "/root/repo/src/matching/entropy.cpp" "src/CMakeFiles/mfcp_matching.dir/matching/entropy.cpp.o" "gcc" "src/CMakeFiles/mfcp_matching.dir/matching/entropy.cpp.o.d"
  "/root/repo/src/matching/objective.cpp" "src/CMakeFiles/mfcp_matching.dir/matching/objective.cpp.o" "gcc" "src/CMakeFiles/mfcp_matching.dir/matching/objective.cpp.o.d"
  "/root/repo/src/matching/penalty.cpp" "src/CMakeFiles/mfcp_matching.dir/matching/penalty.cpp.o" "gcc" "src/CMakeFiles/mfcp_matching.dir/matching/penalty.cpp.o.d"
  "/root/repo/src/matching/problem.cpp" "src/CMakeFiles/mfcp_matching.dir/matching/problem.cpp.o" "gcc" "src/CMakeFiles/mfcp_matching.dir/matching/problem.cpp.o.d"
  "/root/repo/src/matching/rounding.cpp" "src/CMakeFiles/mfcp_matching.dir/matching/rounding.cpp.o" "gcc" "src/CMakeFiles/mfcp_matching.dir/matching/rounding.cpp.o.d"
  "/root/repo/src/matching/smooth_objective.cpp" "src/CMakeFiles/mfcp_matching.dir/matching/smooth_objective.cpp.o" "gcc" "src/CMakeFiles/mfcp_matching.dir/matching/smooth_objective.cpp.o.d"
  "/root/repo/src/matching/solver_exact.cpp" "src/CMakeFiles/mfcp_matching.dir/matching/solver_exact.cpp.o" "gcc" "src/CMakeFiles/mfcp_matching.dir/matching/solver_exact.cpp.o.d"
  "/root/repo/src/matching/solver_gd.cpp" "src/CMakeFiles/mfcp_matching.dir/matching/solver_gd.cpp.o" "gcc" "src/CMakeFiles/mfcp_matching.dir/matching/solver_gd.cpp.o.d"
  "/root/repo/src/matching/solver_mirror.cpp" "src/CMakeFiles/mfcp_matching.dir/matching/solver_mirror.cpp.o" "gcc" "src/CMakeFiles/mfcp_matching.dir/matching/solver_mirror.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mfcp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
