file(REMOVE_RECURSE
  "CMakeFiles/mfcp_diff.dir/diff/finite_diff.cpp.o"
  "CMakeFiles/mfcp_diff.dir/diff/finite_diff.cpp.o.d"
  "CMakeFiles/mfcp_diff.dir/diff/kkt.cpp.o"
  "CMakeFiles/mfcp_diff.dir/diff/kkt.cpp.o.d"
  "CMakeFiles/mfcp_diff.dir/diff/zeroth_order.cpp.o"
  "CMakeFiles/mfcp_diff.dir/diff/zeroth_order.cpp.o.d"
  "libmfcp_diff.a"
  "libmfcp_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfcp_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
