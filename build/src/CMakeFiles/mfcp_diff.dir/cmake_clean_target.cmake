file(REMOVE_RECURSE
  "libmfcp_diff.a"
)
