# Empty dependencies file for mfcp_diff.
# This may be replaced when dependencies are built.
