
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/blas.cpp" "src/CMakeFiles/mfcp_linalg.dir/linalg/blas.cpp.o" "gcc" "src/CMakeFiles/mfcp_linalg.dir/linalg/blas.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "src/CMakeFiles/mfcp_linalg.dir/linalg/cholesky.cpp.o" "gcc" "src/CMakeFiles/mfcp_linalg.dir/linalg/cholesky.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/CMakeFiles/mfcp_linalg.dir/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/mfcp_linalg.dir/linalg/lu.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/mfcp_linalg.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/mfcp_linalg.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/CMakeFiles/mfcp_linalg.dir/linalg/qr.cpp.o" "gcc" "src/CMakeFiles/mfcp_linalg.dir/linalg/qr.cpp.o.d"
  "/root/repo/src/linalg/solve.cpp" "src/CMakeFiles/mfcp_linalg.dir/linalg/solve.cpp.o" "gcc" "src/CMakeFiles/mfcp_linalg.dir/linalg/solve.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/CMakeFiles/mfcp_linalg.dir/linalg/vector_ops.cpp.o" "gcc" "src/CMakeFiles/mfcp_linalg.dir/linalg/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mfcp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
