# Empty compiler generated dependencies file for mfcp_linalg.
# This may be replaced when dependencies are built.
