file(REMOVE_RECURSE
  "libmfcp_linalg.a"
)
