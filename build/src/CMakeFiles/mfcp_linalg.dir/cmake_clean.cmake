file(REMOVE_RECURSE
  "CMakeFiles/mfcp_linalg.dir/linalg/blas.cpp.o"
  "CMakeFiles/mfcp_linalg.dir/linalg/blas.cpp.o.d"
  "CMakeFiles/mfcp_linalg.dir/linalg/cholesky.cpp.o"
  "CMakeFiles/mfcp_linalg.dir/linalg/cholesky.cpp.o.d"
  "CMakeFiles/mfcp_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/mfcp_linalg.dir/linalg/lu.cpp.o.d"
  "CMakeFiles/mfcp_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/mfcp_linalg.dir/linalg/matrix.cpp.o.d"
  "CMakeFiles/mfcp_linalg.dir/linalg/qr.cpp.o"
  "CMakeFiles/mfcp_linalg.dir/linalg/qr.cpp.o.d"
  "CMakeFiles/mfcp_linalg.dir/linalg/solve.cpp.o"
  "CMakeFiles/mfcp_linalg.dir/linalg/solve.cpp.o.d"
  "CMakeFiles/mfcp_linalg.dir/linalg/vector_ops.cpp.o"
  "CMakeFiles/mfcp_linalg.dir/linalg/vector_ops.cpp.o.d"
  "libmfcp_linalg.a"
  "libmfcp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfcp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
