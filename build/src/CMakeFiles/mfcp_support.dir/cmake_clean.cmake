file(REMOVE_RECURSE
  "CMakeFiles/mfcp_support.dir/support/check.cpp.o"
  "CMakeFiles/mfcp_support.dir/support/check.cpp.o.d"
  "CMakeFiles/mfcp_support.dir/support/log.cpp.o"
  "CMakeFiles/mfcp_support.dir/support/log.cpp.o.d"
  "CMakeFiles/mfcp_support.dir/support/rng.cpp.o"
  "CMakeFiles/mfcp_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/mfcp_support.dir/support/stats.cpp.o"
  "CMakeFiles/mfcp_support.dir/support/stats.cpp.o.d"
  "CMakeFiles/mfcp_support.dir/support/stopwatch.cpp.o"
  "CMakeFiles/mfcp_support.dir/support/stopwatch.cpp.o.d"
  "CMakeFiles/mfcp_support.dir/support/table.cpp.o"
  "CMakeFiles/mfcp_support.dir/support/table.cpp.o.d"
  "libmfcp_support.a"
  "libmfcp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfcp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
