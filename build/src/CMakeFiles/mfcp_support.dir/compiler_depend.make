# Empty compiler generated dependencies file for mfcp_support.
# This may be replaced when dependencies are built.
