file(REMOVE_RECURSE
  "libmfcp_support.a"
)
