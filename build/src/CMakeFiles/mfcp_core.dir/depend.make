# Empty dependencies file for mfcp_core.
# This may be replaced when dependencies are built.
