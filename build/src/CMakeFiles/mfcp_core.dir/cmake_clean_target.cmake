file(REMOVE_RECURSE
  "libmfcp_core.a"
)
