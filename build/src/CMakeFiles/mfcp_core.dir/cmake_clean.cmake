file(REMOVE_RECURSE
  "CMakeFiles/mfcp_core.dir/mfcp/baseline_tam.cpp.o"
  "CMakeFiles/mfcp_core.dir/mfcp/baseline_tam.cpp.o.d"
  "CMakeFiles/mfcp_core.dir/mfcp/baseline_ucb.cpp.o"
  "CMakeFiles/mfcp_core.dir/mfcp/baseline_ucb.cpp.o.d"
  "CMakeFiles/mfcp_core.dir/mfcp/experiment.cpp.o"
  "CMakeFiles/mfcp_core.dir/mfcp/experiment.cpp.o.d"
  "CMakeFiles/mfcp_core.dir/mfcp/linear_model.cpp.o"
  "CMakeFiles/mfcp_core.dir/mfcp/linear_model.cpp.o.d"
  "CMakeFiles/mfcp_core.dir/mfcp/metrics.cpp.o"
  "CMakeFiles/mfcp_core.dir/mfcp/metrics.cpp.o.d"
  "CMakeFiles/mfcp_core.dir/mfcp/predictor.cpp.o"
  "CMakeFiles/mfcp_core.dir/mfcp/predictor.cpp.o.d"
  "CMakeFiles/mfcp_core.dir/mfcp/regret.cpp.o"
  "CMakeFiles/mfcp_core.dir/mfcp/regret.cpp.o.d"
  "CMakeFiles/mfcp_core.dir/mfcp/trainer_mfcp_ad.cpp.o"
  "CMakeFiles/mfcp_core.dir/mfcp/trainer_mfcp_ad.cpp.o.d"
  "CMakeFiles/mfcp_core.dir/mfcp/trainer_mfcp_fg.cpp.o"
  "CMakeFiles/mfcp_core.dir/mfcp/trainer_mfcp_fg.cpp.o.d"
  "CMakeFiles/mfcp_core.dir/mfcp/trainer_tsm.cpp.o"
  "CMakeFiles/mfcp_core.dir/mfcp/trainer_tsm.cpp.o.d"
  "libmfcp_core.a"
  "libmfcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
