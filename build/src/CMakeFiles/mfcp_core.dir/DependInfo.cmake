
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mfcp/baseline_tam.cpp" "src/CMakeFiles/mfcp_core.dir/mfcp/baseline_tam.cpp.o" "gcc" "src/CMakeFiles/mfcp_core.dir/mfcp/baseline_tam.cpp.o.d"
  "/root/repo/src/mfcp/baseline_ucb.cpp" "src/CMakeFiles/mfcp_core.dir/mfcp/baseline_ucb.cpp.o" "gcc" "src/CMakeFiles/mfcp_core.dir/mfcp/baseline_ucb.cpp.o.d"
  "/root/repo/src/mfcp/experiment.cpp" "src/CMakeFiles/mfcp_core.dir/mfcp/experiment.cpp.o" "gcc" "src/CMakeFiles/mfcp_core.dir/mfcp/experiment.cpp.o.d"
  "/root/repo/src/mfcp/linear_model.cpp" "src/CMakeFiles/mfcp_core.dir/mfcp/linear_model.cpp.o" "gcc" "src/CMakeFiles/mfcp_core.dir/mfcp/linear_model.cpp.o.d"
  "/root/repo/src/mfcp/metrics.cpp" "src/CMakeFiles/mfcp_core.dir/mfcp/metrics.cpp.o" "gcc" "src/CMakeFiles/mfcp_core.dir/mfcp/metrics.cpp.o.d"
  "/root/repo/src/mfcp/predictor.cpp" "src/CMakeFiles/mfcp_core.dir/mfcp/predictor.cpp.o" "gcc" "src/CMakeFiles/mfcp_core.dir/mfcp/predictor.cpp.o.d"
  "/root/repo/src/mfcp/regret.cpp" "src/CMakeFiles/mfcp_core.dir/mfcp/regret.cpp.o" "gcc" "src/CMakeFiles/mfcp_core.dir/mfcp/regret.cpp.o.d"
  "/root/repo/src/mfcp/trainer_mfcp_ad.cpp" "src/CMakeFiles/mfcp_core.dir/mfcp/trainer_mfcp_ad.cpp.o" "gcc" "src/CMakeFiles/mfcp_core.dir/mfcp/trainer_mfcp_ad.cpp.o.d"
  "/root/repo/src/mfcp/trainer_mfcp_fg.cpp" "src/CMakeFiles/mfcp_core.dir/mfcp/trainer_mfcp_fg.cpp.o" "gcc" "src/CMakeFiles/mfcp_core.dir/mfcp/trainer_mfcp_fg.cpp.o.d"
  "/root/repo/src/mfcp/trainer_tsm.cpp" "src/CMakeFiles/mfcp_core.dir/mfcp/trainer_tsm.cpp.o" "gcc" "src/CMakeFiles/mfcp_core.dir/mfcp/trainer_tsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mfcp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mfcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
