file(REMOVE_RECURSE
  "libmfcp_parallel.a"
)
