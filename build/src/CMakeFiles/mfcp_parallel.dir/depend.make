# Empty dependencies file for mfcp_parallel.
# This may be replaced when dependencies are built.
