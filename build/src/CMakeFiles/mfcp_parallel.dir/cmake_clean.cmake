file(REMOVE_RECURSE
  "CMakeFiles/mfcp_parallel.dir/parallel/parallel_for.cpp.o"
  "CMakeFiles/mfcp_parallel.dir/parallel/parallel_for.cpp.o.d"
  "CMakeFiles/mfcp_parallel.dir/parallel/thread_pool.cpp.o"
  "CMakeFiles/mfcp_parallel.dir/parallel/thread_pool.cpp.o.d"
  "libmfcp_parallel.a"
  "libmfcp_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfcp_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
