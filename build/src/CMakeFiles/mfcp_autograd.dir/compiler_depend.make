# Empty compiler generated dependencies file for mfcp_autograd.
# This may be replaced when dependencies are built.
