file(REMOVE_RECURSE
  "CMakeFiles/mfcp_autograd.dir/autograd/ops.cpp.o"
  "CMakeFiles/mfcp_autograd.dir/autograd/ops.cpp.o.d"
  "CMakeFiles/mfcp_autograd.dir/autograd/tape.cpp.o"
  "CMakeFiles/mfcp_autograd.dir/autograd/tape.cpp.o.d"
  "CMakeFiles/mfcp_autograd.dir/autograd/variable.cpp.o"
  "CMakeFiles/mfcp_autograd.dir/autograd/variable.cpp.o.d"
  "libmfcp_autograd.a"
  "libmfcp_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfcp_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
