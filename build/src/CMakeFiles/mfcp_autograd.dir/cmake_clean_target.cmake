file(REMOVE_RECURSE
  "libmfcp_autograd.a"
)
