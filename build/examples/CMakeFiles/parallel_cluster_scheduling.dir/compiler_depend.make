# Empty compiler generated dependencies file for parallel_cluster_scheduling.
# This may be replaced when dependencies are built.
