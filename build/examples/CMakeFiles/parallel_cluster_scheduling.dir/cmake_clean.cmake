file(REMOVE_RECURSE
  "CMakeFiles/parallel_cluster_scheduling.dir/parallel_cluster_scheduling.cpp.o"
  "CMakeFiles/parallel_cluster_scheduling.dir/parallel_cluster_scheduling.cpp.o.d"
  "parallel_cluster_scheduling"
  "parallel_cluster_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_cluster_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
