file(REMOVE_RECURSE
  "CMakeFiles/platform_simulation.dir/platform_simulation.cpp.o"
  "CMakeFiles/platform_simulation.dir/platform_simulation.cpp.o.d"
  "platform_simulation"
  "platform_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
