# Empty compiler generated dependencies file for platform_simulation.
# This may be replaced when dependencies are built.
