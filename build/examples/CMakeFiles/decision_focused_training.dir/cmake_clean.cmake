file(REMOVE_RECURSE
  "CMakeFiles/decision_focused_training.dir/decision_focused_training.cpp.o"
  "CMakeFiles/decision_focused_training.dir/decision_focused_training.cpp.o.d"
  "decision_focused_training"
  "decision_focused_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_focused_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
