# Empty dependencies file for decision_focused_training.
# This may be replaced when dependencies are built.
