# Empty dependencies file for exp_fig5_scaling.
# This may be replaced when dependencies are built.
