file(REMOVE_RECURSE
  "CMakeFiles/exp_fig5_scaling.dir/exp_fig5_scaling.cpp.o"
  "CMakeFiles/exp_fig5_scaling.dir/exp_fig5_scaling.cpp.o.d"
  "exp_fig5_scaling"
  "exp_fig5_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig5_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
