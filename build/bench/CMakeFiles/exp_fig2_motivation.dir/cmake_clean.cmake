file(REMOVE_RECURSE
  "CMakeFiles/exp_fig2_motivation.dir/exp_fig2_motivation.cpp.o"
  "CMakeFiles/exp_fig2_motivation.dir/exp_fig2_motivation.cpp.o.d"
  "exp_fig2_motivation"
  "exp_fig2_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig2_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
