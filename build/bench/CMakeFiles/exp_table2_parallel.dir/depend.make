# Empty dependencies file for exp_table2_parallel.
# This may be replaced when dependencies are built.
