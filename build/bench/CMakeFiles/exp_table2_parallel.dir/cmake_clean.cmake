file(REMOVE_RECURSE
  "CMakeFiles/exp_table2_parallel.dir/exp_table2_parallel.cpp.o"
  "CMakeFiles/exp_table2_parallel.dir/exp_table2_parallel.cpp.o.d"
  "exp_table2_parallel"
  "exp_table2_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table2_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
