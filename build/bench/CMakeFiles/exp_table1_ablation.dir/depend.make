# Empty dependencies file for exp_table1_ablation.
# This may be replaced when dependencies are built.
