file(REMOVE_RECURSE
  "CMakeFiles/exp_table1_ablation.dir/exp_table1_ablation.cpp.o"
  "CMakeFiles/exp_table1_ablation.dir/exp_table1_ablation.cpp.o.d"
  "exp_table1_ablation"
  "exp_table1_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table1_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
