file(REMOVE_RECURSE
  "CMakeFiles/micro_gradients.dir/micro_gradients.cpp.o"
  "CMakeFiles/micro_gradients.dir/micro_gradients.cpp.o.d"
  "micro_gradients"
  "micro_gradients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gradients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
