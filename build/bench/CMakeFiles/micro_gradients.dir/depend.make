# Empty dependencies file for micro_gradients.
# This may be replaced when dependencies are built.
