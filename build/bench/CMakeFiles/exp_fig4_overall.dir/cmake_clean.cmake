file(REMOVE_RECURSE
  "CMakeFiles/exp_fig4_overall.dir/exp_fig4_overall.cpp.o"
  "CMakeFiles/exp_fig4_overall.dir/exp_fig4_overall.cpp.o.d"
  "exp_fig4_overall"
  "exp_fig4_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig4_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
