// Decision-focused training walkthrough.
//
// Reproduces the paper's core claim on one environment: a predictor
// fine-tuned through the deployed matching pipeline (MFCP-FG: zeroth-order
// gradients of the true makespan of the rounded assignment) achieves lower
// matching regret than the same architecture trained to minimize MSE
// (TSM) — even though its MSE may be *worse*. MFCP-AD (analytic gradients
// through the relaxed surrogate) is also shown for comparison; see
// DESIGN.md §4 for why the discrete-loss FG route is stronger here.
//
// Run:  ./build/examples/decision_focused_training
#include <cstdio>

#include "mfcp/experiment.hpp"
#include "nn/loss.hpp"

using namespace mfcp;

namespace {

void print_row(const core::MethodResult& r) {
  std::printf("%-10s %-18s %-18s %-18s %7.1fs\n", r.label.c_str(),
              format_mean_std(r.metrics.regret().mean(),
                              r.metrics.regret().stddev())
                  .c_str(),
              format_mean_std(r.metrics.reliability().mean(),
                              r.metrics.reliability().stddev())
                  .c_str(),
              format_mean_std(r.metrics.utilization().mean(),
                              r.metrics.utilization().stddev())
                  .c_str(),
              r.train_seconds);
}

}  // namespace

int main() {
  core::ExperimentConfig config;
  config.setting = sim::Setting::kC;  // strong heterogeneity: the regime
                                      // where prediction errors are costly
  config.seed = 42;
  config.num_clusters = 3;
  config.round_tasks = 5;
  config.train_tasks = 60;
  config.test_tasks = 60;
  config.test_rounds = 30;
  config.gamma = 0.75;
  config.predictor.hidden = {2};  // limited capacity: systematic errors
  config.tsm.epochs = 300;
  config.mfcp.pretrain_epochs = 300;
  config.mfcp_ad.pretrain_epochs = 300;

  std::printf("== Decision-focused training (TSM vs MFCP) ==\n");
  std::printf("setting %s, %zu clusters, rounds of %zu tasks\n\n",
              sim::to_string(config.setting).c_str(), config.num_clusters,
              config.round_tasks);
  const auto ctx = core::make_context(config);
  ThreadPool pool;

  std::printf("%-10s %-18s %-18s %-18s %8s\n", "Method", "Regret",
              "Reliability", "Utilization", "train");
  core::MethodResult tsm;
  core::MethodResult fg;
  for (core::Method m : {core::Method::kTsm, core::Method::kMfcpAd,
                         core::Method::kMfcpFg}) {
    auto result = core::run_method(m, ctx, config, &pool);
    print_row(result);
    if (m == core::Method::kTsm) {
      tsm = result;
    } else if (m == core::Method::kMfcpFg) {
      fg = result;
    }
  }

  if (fg.metrics.regret().mean() < tsm.metrics.regret().mean()) {
    std::printf("\nMFCP-FG cut matching regret by %.0f%% relative to the "
                "two-stage baseline,\nwhile its prediction MSE may be no "
                "better — regret is what the platform pays for.\n",
                100.0 * (1.0 - fg.metrics.regret().mean() /
                                   tsm.metrics.regret().mean()));
  } else {
    std::printf("\nOn this draw MFCP-FG did not beat TSM — the gap is "
                "environment-dependent; see EXPERIMENTS.md.\n");
  }
  return 0;
}
