// Quickstart: the smallest end-to-end tour of the library.
//
//   1. Build a computing-resource-exchange platform (3 heterogeneous
//      clusters, setting A) and profile a task pool on it.
//   2. Train the two-stage (MSE) predictors.
//   3. Match a round of 5 tasks using the predicted metrics: continuous
//      barrier solve -> rounding -> reliability repair.
//   4. Compare against the exact optimum computed from the true metrics.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "matching/objective.hpp"
#include "mfcp/experiment.hpp"

using namespace mfcp;

int main() {
  core::ExperimentConfig config;
  config.setting = sim::Setting::kA;
  config.num_clusters = 3;
  config.round_tasks = 5;
  config.train_tasks = 120;
  config.test_tasks = 40;
  config.tsm.epochs = 250;

  std::printf("== MFCP quickstart ==\n");
  std::printf("building platform (setting %s, %zu clusters)...\n",
              sim::to_string(config.setting).c_str(), config.num_clusters);
  const core::ExperimentContext ctx = core::make_context(config);
  for (std::size_t i = 0; i < ctx.platform.num_clusters(); ++i) {
    const auto& p = ctx.platform.cluster(i).profile();
    std::printf("  cluster %zu: %-22s law=%-12s speed=%.2f\n", i,
                p.name.c_str(), sim::to_string(p.law).c_str(),
                p.base_seconds_per_unit);
  }

  std::printf("training TSM predictors on %zu profiled tasks...\n",
              ctx.train.num_tasks());
  Rng rng(7);
  core::PlatformPredictor predictor(config.num_clusters, config.predictor,
                                    rng);
  const auto tsm = core::train_tsm(predictor, ctx.train, config.tsm);
  std::printf("  final MSE: time %.4f, reliability %.5f (%.2fs)\n",
              tsm.time_loss_history.back(), tsm.rel_loss_history.back(),
              tsm.seconds);

  // One matching round from the test split.
  const std::size_t n = config.round_tasks;
  Matrix features(n, ctx.test.feature_dim());
  matching::MatchingProblem truth;
  truth.times = Matrix(config.num_clusters, n);
  truth.reliability = Matrix(config.num_clusters, n);
  truth.gamma = config.gamma;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t c = 0; c < ctx.test.feature_dim(); ++c) {
      features(k, c) = ctx.test.features(k, c);
    }
    for (std::size_t i = 0; i < config.num_clusters; ++i) {
      truth.times(i, k) = ctx.test.true_times(i, k);
      truth.reliability(i, k) = ctx.test.true_reliability(i, k);
    }
  }

  const Matrix t_hat = predictor.predict_time_matrix(features);
  const Matrix a_hat = predictor.predict_reliability_matrix(features);
  const auto predicted = truth.with_metrics(t_hat, a_hat);
  const auto deployed = core::deploy_matching(predicted, config.eval);

  std::printf("matching %zu tasks (gamma = %.2f):\n", n, config.gamma);
  for (std::size_t j = 0; j < n; ++j) {
    const auto& task = ctx.test.tasks[j];
    std::printf(
        "  task %zu (%-11s on %-9s) -> cluster %d   t̂=%.2fh  t=%.2fh\n", j,
        sim::to_string(task.family).c_str(),
        sim::to_string(task.dataset).c_str(), deployed[j],
        t_hat(static_cast<std::size_t>(deployed[j]), j),
        truth.times(static_cast<std::size_t>(deployed[j]), j));
  }

  const auto outcome = core::evaluate_assignment(truth, deployed);
  std::printf("result: makespan %.3fh (optimal %.3fh), regret/task %.3f\n",
              outcome.makespan, outcome.optimal_makespan, outcome.regret);
  std::printf("        reliability %.3f (feasible: %s), utilization %.3f\n",
              outcome.reliability, outcome.feasible ? "yes" : "NO",
              outcome.utilization);
  return 0;
}
