// Online platform quickstart: the engine serving a live arrival stream.
//
// Where examples/platform_simulation replays fixed-size rounds from a test
// split, this demo runs the full online spine: a Poisson arrival stream
// with deadlines flows through the bounded admission queue, the
// micro-batcher closes size-or-timeout matching rounds, each round is
// predicted + matched + dispatched, and observed outcomes feed the
// drift-aware online trainer. A mid-run hardware degradation shows the
// detector tripping and the predictor recovering.
//
// The run is fully instrumented: a metrics registry collects per-stage
// latency histograms, queue/batcher counters, and the drift gauges; a
// trace ring keeps the most recent stage spans; and a JSONL journal
// (online_platform.jsonl) records one deterministic line per round. The
// demo ends by printing the Prometheus text exposition.
//
// The registry is also served live over HTTP while the demo runs: scrape
// GET /metrics (Prometheus text) or GET /healthz on the printed port.
//
// Two modes:
//
//   batch (default)     consume the synthetic arrival stream to
//                       exhaustion, exporter on --serve-port
//   gateway             `--gateway-port N` starts the platform gateway
//                       (POST /submit, GET /task/<id>, /stats, /metrics,
//                       /healthz) and runs the engine in real-time serve
//                       mode until SIGINT/SIGTERM or --serve-seconds;
//                       tools/loadgen is the matching client
//
// Durability: `--data-dir DIR` arms the storage layer — every accepted
// task is WAL-logged before its 200 is sent, predictor+counters are
// checkpointed periodically, and the round journal is mirrored into a
// time-chunked store (GET /journal). On startup the engine recovers:
// latest valid snapshot plus WAL replay of acked-but-unterminal tasks,
// so a kill -9 mid-burst loses nothing that was acknowledged.
//
// Both modes shut down gracefully on SIGINT/SIGTERM: arrivals stop, the
// queue drains through flush rounds, the journal and span trace are
// flushed to disk, and the final metrics exposition is printed.
//
// Run:  ./build/examples/online_platform
//       ./build/examples/online_platform --serve-port 9464
//       ./build/examples/online_platform --linger-seconds 30
//           keeps the exporter up after the run so a scraper (or curl)
//           can read the final state — the CI smoke job relies on this.
//       ./build/examples/online_platform --gateway-port 0 --serve-seconds 10
//           serve mode on an ephemeral port, stopping after 10 s.
// Tip:  MFCP_LOG_LEVEL=info ./build/examples/online_platform
//       also prints drift/retrain log lines from inside the engine.
#include <csignal>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "control/ratekeeper.hpp"
#include "control/token_bucket.hpp"
#include "engine/engine.hpp"
#include "mfcp/trainer_tsm.hpp"
#include "net/gateway.hpp"
#include "obs/alert_webhook.hpp"
#include "obs/flight.hpp"
#include "obs/http_exporter.hpp"
#include "obs/profiler.hpp"
#include "obs/sinks.hpp"
#include "obs/slo.hpp"
#include "obs/trace_store.hpp"
#include "sim/dataset.hpp"

using namespace mfcp;

namespace {

// Signal handlers may only do async-signal-safe work: one atomic store.
// Both the engine (stop_flag) and the serve loop poll it.
std::atomic<bool> g_stop{false};

void handle_stop_signal(int /*signum*/) {
  g_stop.store(true, std::memory_order_relaxed);
}

void install_signal_handlers() {
  struct sigaction action{};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  int serve_port = 0;  // 0 = ephemeral, chosen by the kernel
  int linger_seconds = 0;
  int gateway_port = -1;  // -1 = batch mode; >= 0 starts the gateway
  double serve_seconds = 0.0;  // 0 = until SIGINT/SIGTERM
  double hours_per_second = 60.0;
  double trace_sample = 0.0;  // task-lifecycle trace sampling rate [0,1]
  bool ratekeeper_on = false;
  bool flight_on = false;
  bool profile_on = false;
  double stall_budget_seconds = 2.0;
  std::string slo_config_path;
  std::string alert_log_path;
  std::string alert_webhook_url;
  std::string data_dir;   // empty = durability off
  int retrain_every = 0;  // 0 = drift-triggered retraining only
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--serve-port") == 0 && k + 1 < argc) {
      serve_port = std::atoi(argv[++k]);
    } else if (std::strcmp(argv[k], "--linger-seconds") == 0 &&
               k + 1 < argc) {
      linger_seconds = std::atoi(argv[++k]);
    } else if (std::strcmp(argv[k], "--gateway-port") == 0 && k + 1 < argc) {
      gateway_port = std::atoi(argv[++k]);
    } else if (std::strcmp(argv[k], "--serve-seconds") == 0 && k + 1 < argc) {
      serve_seconds = std::atof(argv[++k]);
    } else if (std::strcmp(argv[k], "--sim-hours-per-second") == 0 &&
               k + 1 < argc) {
      hours_per_second = std::atof(argv[++k]);
    } else if (std::strcmp(argv[k], "--trace-sample") == 0 && k + 1 < argc) {
      trace_sample = std::atof(argv[++k]);
    } else if (std::strcmp(argv[k], "--ratekeeper") == 0) {
      ratekeeper_on = true;
    } else if (std::strcmp(argv[k], "--slo-config") == 0 && k + 1 < argc) {
      slo_config_path = argv[++k];
    } else if (std::strcmp(argv[k], "--alert-log") == 0 && k + 1 < argc) {
      alert_log_path = argv[++k];
    } else if (std::strcmp(argv[k], "--alert-webhook") == 0 && k + 1 < argc) {
      alert_webhook_url = argv[++k];
    } else if (std::strcmp(argv[k], "--flight") == 0) {
      flight_on = true;
    } else if (std::strcmp(argv[k], "--profile") == 0) {
      profile_on = true;
    } else if (std::strcmp(argv[k], "--stall-budget-seconds") == 0 &&
               k + 1 < argc) {
      stall_budget_seconds = std::atof(argv[++k]);
    } else if (std::strcmp(argv[k], "--data-dir") == 0 && k + 1 < argc) {
      data_dir = argv[++k];
    } else if (std::strcmp(argv[k], "--retrain-every") == 0 &&
               k + 1 < argc) {
      retrain_every = std::atoi(argv[++k]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--serve-port N] [--linger-seconds S]\n"
                   "          [--gateway-port N] [--serve-seconds S]\n"
                   "          [--sim-hours-per-second X] "
                   "[--trace-sample R]\n"
                   "          [--ratekeeper] [--slo-config FILE] "
                   "[--alert-log FILE]\n"
                   "          [--alert-webhook http://host:port/path]\n"
                   "          [--flight] [--stall-budget-seconds S] "
                   "[--profile]\n"
                   "          [--data-dir DIR] [--retrain-every N]\n",
                   argv[0]);
      return 2;
    }
  }
  const bool gateway_mode = gateway_port >= 0;
  install_signal_handlers();
  const std::size_t num_clusters = 3;

  // Environment + profiled dataset for pretraining.
  sim::Platform platform =
      sim::Platform::make_setting(sim::Setting::kA, num_clusters);
  sim::PseudoGnnEmbedder embedder;
  sim::DatasetConfig data_cfg;
  data_cfg.num_tasks = 100;
  const sim::Dataset profile =
      build_dataset(platform, embedder, data_cfg);

  Rng init(0x0417e5ULL);
  core::PlatformPredictor predictor(num_clusters, core::PredictorConfig{},
                                    init);
  core::TsmConfig tsm;
  tsm.epochs = 250;
  core::train_tsm(predictor, profile, tsm);
  std::printf("pretrained predictor on %zu profiled tasks\n",
              profile.num_tasks());

  // Engine: 300 arrivals, bursty, cluster 0 degrades 5x early on.
  engine::EngineConfig cfg;
  cfg.arrivals.rate_per_hour = 30.0;
  cfg.arrivals.burst_factor = 2.5;
  cfg.arrivals.burst_period_hours = 1.5;
  cfg.arrivals.max_arrivals = 300;
  cfg.profile_probability = 0.15;
  cfg.batcher.max_batch = 5;
  cfg.batcher.max_wait_hours = 0.25;
  cfg.gamma = 0.7;
  cfg.metrics_window = 8;
  cfg.trainer.retrain_epochs = 50;
  // The matcher spreads load, so only a fraction of each batch lands on
  // the drifted cluster — lower the trip threshold so the diluted error
  // signal still registers in this short demo.
  cfg.trainer.drift.ratio_threshold = 1.25;
  // Post-drift evidence dominates each retrain burst while the pre-drift
  // tail still regularizes it (see OnlineTrainerConfig).
  cfg.trainer.replay_recency_half_life = 128.0;
  if (retrain_every > 0) {
    cfg.trainer.retrain_every = static_cast<std::size_t>(retrain_every);
  }
  cfg.stop_flag = &g_stop;

  engine::DriftEventSpec drift;
  drift.at_hours = 2.5;
  drift.cluster = 0;
  drift.drift.time_scale = 5.0;
  drift.drift.reliability_logit_shift = -1.5;
  cfg.drift_events.push_back(drift);

  // Telemetry: explicit registry + trace ring + per-round JSONL journal on
  // the engine; the same registry installed as the process default so the
  // matching solvers and the thread pool report into it too.
  obs::MetricsRegistry registry;
  obs::TraceRing trace(128);
  obs::JsonlWriter journal("online_platform.jsonl");
  cfg.registry = &registry;
  cfg.trace = &trace;
  cfg.journal = &journal;
  cfg.attribution = true;
  obs::set_default_registry(&registry);

  // Task-lifecycle tracing (per-task span chains behind GET /trace/<id>)
  // and the SLO burn-rate monitor (behind GET /alerts + mfcp_slo_*
  // gauges). Tracing stays off unless --trace-sample > 0. SLO targets
  // come from --slo-config when given, defaults otherwise.
  obs::SloConfig slo_cfg;
  if (!slo_config_path.empty()) {
    std::string slo_err;
    const auto loaded = obs::load_slo_config(slo_config_path, &slo_err);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "--slo-config %s: %s\n", slo_config_path.c_str(),
                   slo_err.c_str());
      return 2;
    }
    slo_cfg = *loaded;
    std::printf("SLO targets loaded from %s\n", slo_config_path.c_str());
  }
  obs::TraceStore task_traces(4096);
  obs::SloMonitor slo(slo_cfg);
  cfg.task_traces = &task_traces;
  cfg.trace_sample_rate = trace_sample;
  cfg.slo = &slo;

  // Append-only alert stream: one JSONL record per SLO rule transition
  // (fire / resolve), in addition to the live GET /alerts view.
  std::optional<obs::JsonlWriter> alert_log;
  if (!alert_log_path.empty()) {
    alert_log.emplace(alert_log_path);
    slo.set_alert_log(&*alert_log);
  }

  // Webhook pager: each fire/resolve transition POSTed as JSON from a
  // dedicated sender thread — delivery failures count, never block.
  std::optional<obs::WebhookSender> webhook;
  if (!alert_webhook_url.empty()) {
    std::string webhook_err;
    const auto webhook_cfg =
        obs::parse_webhook_url(alert_webhook_url, &webhook_err);
    if (!webhook_cfg.has_value()) {
      std::fprintf(stderr, "--alert-webhook %s: %s\n",
                   alert_webhook_url.c_str(), webhook_err.c_str());
      return 2;
    }
    webhook.emplace(*webhook_cfg);
    webhook->bind_metrics(&registry);
    slo.set_alert_sink(&*webhook);
    std::printf("alert webhook: POST %s\n", alert_webhook_url.c_str());
  }

  // Black-box flight recorder: per-thread event rings + stall watchdog +
  // async-signal-safe crash dump, all writing to online_platform.flight.
  // Declared before the thread pool so pool workers (which heartbeat via
  // the process-wide default) quiesce before the recorder dies.
  std::optional<obs::FlightRecorder> flight;
  if (flight_on) {
    obs::FlightConfig flight_cfg;
    flight_cfg.stall_budget_seconds = stall_budget_seconds;
    flight.emplace(flight_cfg);
    flight->bind_metrics(&registry);
    obs::set_default_flight(&*flight);
    obs::install_crash_handlers(&*flight, "online_platform.flight");
    flight->start_watchdog("online_platform.flight", &slo);
    cfg.flight = &*flight;
    std::printf("flight recorder armed: %zu-event rings, %.2fs stall "
                "budget, crash dumps to online_platform.flight\n",
                flight->config().ring_capacity, stall_budget_seconds);
  }

  // On-demand sampling profiler behind GET /debug/profile (gateway and
  // exporter alike). Armed-idle cost is a null/epoch check per stage, so
  // shipping with --profile on is cheap; a session only runs while a
  // /debug/profile request is in flight. Declared before the thread pool
  // so workers quiesce before the per-thread sample rings die.
  std::optional<obs::SamplingProfiler> profiler;
  if (profile_on) {
    obs::ProfilerConfig prof_cfg;
    prof_cfg.max_threads = 64;
    profiler.emplace(prof_cfg);
    obs::set_default_profiler(&*profiler);
    std::printf("sampling profiler armed: GET /debug/profile?seconds=N"
                "&hz=F returns folded stacks\n");
  }

  // Ratekeeper: the closed-loop admission controller plus the per-client
  // token buckets it drives. Initial rate is sized from the batcher (a
  // few full batches per timeout window) and the wait target leaves one
  // extra timeout of headroom before the controller pushes back.
  std::optional<control::Ratekeeper> ratekeeper;
  std::optional<control::TokenBucketTable> buckets;
  if (ratekeeper_on) {
    control::RatekeeperConfig rk_cfg;
    rk_cfg.initial_rate_per_hour = 4.0 *
                                   static_cast<double>(cfg.batcher.max_batch) /
                                   cfg.batcher.max_wait_hours;
    rk_cfg.wait_target_hours = 2.0 * cfg.batcher.max_wait_hours;
    ratekeeper.emplace(rk_cfg, slo.config());
    buckets.emplace();
    cfg.ratekeeper = &*ratekeeper;
    cfg.admission_buckets = &*buckets;
    std::printf("ratekeeper enabled: initial rate %.1f tasks/h, wait "
                "target %.2fh\n",
                rk_cfg.initial_rate_per_hour, rk_cfg.wait_target_hours);
  }

  // Durability layer: WAL + checkpoints + chunked journal under one
  // directory. Declared before the engine so the borrowed pointer
  // outlives it; recovery runs right after the engine (and, in gateway
  // mode, the link) exist.
  std::optional<storage::StorageManager> storage;
  if (!data_dir.empty()) {
    storage::StorageConfig st_cfg;
    st_cfg.dir = data_dir;
    storage.emplace(st_cfg);
    storage->bind_metrics(&registry);
    cfg.storage = &*storage;
    std::printf("storage armed: %s (wal fsync every %zu, checkpoint every "
                "%zu rounds, %.1fh chunks)\n",
                data_dir.c_str(), st_cfg.wal_fsync_every,
                st_cfg.checkpoint_every_rounds, st_cfg.chunk_hours);
  }
  if (retrain_every > 0) {
    std::printf("periodic retraining: every %d rounds (plus drift "
                "trips)\n", retrain_every);
  }

  ThreadPool pool;
  engine::OnlineEngine eng(cfg, platform, embedder, predictor, &pool);
  engine::EngineResult result;

  const auto print_recovery = [](const engine::RecoveryReport& rep) {
    std::printf("storage: recovered %llu task(s) (%llu dropped), %llu "
                "already terminal, %s, resume t=%.2fh%s\n",
                static_cast<unsigned long long>(rep.replayed),
                static_cast<unsigned long long>(rep.dropped),
                static_cast<unsigned long long>(rep.terminal),
                rep.checkpoint_loaded ? "snapshot restored" : "cold start",
                rep.resume_hours,
                rep.truncated_bytes > 0 ? " (torn WAL tail truncated)"
                                        : "");
  };

  if (gateway_mode) {
    // Platform gateway: external submissions over HTTP drive the engine
    // in real time; /metrics and /healthz ride on the same server.
    engine::GatewayLinkConfig link_cfg;
    link_cfg.traces = &task_traces;
    link_cfg.trace_sample_rate = trace_sample;
    link_cfg.buckets = buckets.has_value() ? &*buckets : nullptr;
    // Durability point: the link WAL-logs each acceptance before its 200.
    link_cfg.wal = storage.has_value() ? &storage->wal() : nullptr;
    engine::GatewayLink link(link_cfg);
    if (storage.has_value()) {
      print_recovery(eng.recover(&link));
    }
    net::GatewayConfig gateway_cfg;
    gateway_cfg.http.port = static_cast<std::uint16_t>(gateway_port);
    gateway_cfg.slo = &slo;
    gateway_cfg.traces = &task_traces;
    gateway_cfg.ratekeeper = ratekeeper.has_value() ? &*ratekeeper : nullptr;
    gateway_cfg.buckets = buckets.has_value() ? &*buckets : nullptr;
    gateway_cfg.storage = storage.has_value() ? &*storage : nullptr;
    // /debug routes + per-worker heartbeats when the recorder is armed
    // (observer declared before the gateway, so it outlives the server).
    // The observer also runs recorder-free when only the profiler is on:
    // it registers HTTP workers as sampling targets either way.
    std::optional<obs::FlightServerObserver> http_observer;
    if (flight.has_value()) {
      gateway_cfg.flight = &*flight;
    }
    if (profiler.has_value()) {
      gateway_cfg.profiler = &*profiler;
    }
    if (flight.has_value() || profiler.has_value()) {
      http_observer.emplace(flight.has_value() ? &*flight : nullptr,
                            "gateway");
      gateway_cfg.http.observer = &*http_observer;
    }
    net::PlatformGateway gateway(link, &registry, &trace, gateway_cfg);
    // Resolution near the 50 ms submit-latency target instead of the
    // generic decade grid (safe here: nothing has observed into the
    // histogram yet).
    obs::tighten_latency_buckets(registry, "mfcp_gateway_submit_seconds",
                                 slo.config().submit_latency_target_seconds);
    std::printf("gateway listening on http://127.0.0.1:%u\n",
                static_cast<unsigned>(gateway.port()));
    std::fflush(stdout);

    // Optional wall-clock stop for unattended runs (CI): behaves exactly
    // like a signal, just on a timer.
    std::thread timer;
    if (serve_seconds > 0.0) {
      timer = std::thread([serve_seconds] {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration<double>(serve_seconds);
        while (std::chrono::steady_clock::now() < deadline &&
               !g_stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        g_stop.store(true, std::memory_order_relaxed);
      });
    }

    engine::ServeConfig serve_cfg;
    serve_cfg.hours_per_second = hours_per_second;
    result = eng.serve(link, serve_cfg);

    if (timer.joinable()) {
      g_stop.store(true, std::memory_order_relaxed);
      timer.join();
    }
    const engine::ServiceStats stats = link.stats();
    std::printf("\ngateway: %llu accepted, %llu rejected busy, %llu "
                "throttled; task states %llu matched / %llu dispatched / "
                "%llu expired / %llu rejected\n",
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.rejected_busy),
                static_cast<unsigned long long>(stats.rejected_throttled),
                static_cast<unsigned long long>(stats.tasks.matched),
                static_cast<unsigned long long>(stats.tasks.dispatched),
                static_cast<unsigned long long>(stats.tasks.expired),
                static_cast<unsigned long long>(stats.tasks.rejected));
    if (linger_seconds > 0) {
      std::printf("gateway lingering for %ds (%llu requests served so "
                  "far)...\n",
                  linger_seconds,
                  static_cast<unsigned long long>(
                      gateway.requests_served()));
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::seconds(linger_seconds));
    }
    gateway.stop();
  } else {
    // Live scrape endpoint: the exporter snapshots the registry on every
    // GET /metrics, so a scraper watches the run converge in real time.
    obs::HttpExporterConfig http_cfg;
    http_cfg.port = static_cast<std::uint16_t>(serve_port);
    std::optional<obs::FlightServerObserver> http_observer;
    if (flight.has_value()) {
      http_cfg.flight = &*flight;
    }
    if (profiler.has_value()) {
      http_cfg.profiler = &*profiler;
    }
    if (flight.has_value() || profiler.has_value()) {
      http_observer.emplace(flight.has_value() ? &*flight : nullptr,
                            "exporter");
      http_cfg.observer = &*http_observer;
    }
    obs::HttpExporter exporter(
        [&registry] { return registry.snapshot(); }, http_cfg);
    std::printf("exporter listening on http://127.0.0.1:%u\n",
                static_cast<unsigned>(exporter.port()));
    std::fflush(stdout);

    if (storage.has_value()) {
      print_recovery(eng.recover());
    }
    result = eng.run();

    std::printf("\nround  t(h)   trig     n  wait(h)  regret  roll    "
                "drift   pred    round'g retrain\n");
    for (const auto& r : result.rounds) {
      std::printf("%5zu  %5.2f  %-7s %2zu  %6.3f  %6.3f  %6.3f  %6.3f  "
                  "%6.3f  %6.3f  %s\n",
                  r.round, r.close_hours, to_string(r.trigger).c_str(),
                  r.batch, r.max_wait_hours, r.regret, r.rolling_regret,
                  r.drift_stat, r.attribution.pred_gap,
                  r.attribution.rounding_gap,
                  r.retrained ? "<== retrained" : "");
    }

    if (linger_seconds > 0) {
      std::printf("exporter lingering for %ds (%llu requests served so "
                  "far)...\n",
                  linger_seconds,
                  static_cast<unsigned long long>(
                      exporter.requests_served()));
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::seconds(linger_seconds));
    }
    exporter.stop();
  }
  obs::set_default_registry(nullptr);
  if (g_stop.load(std::memory_order_relaxed)) {
    std::printf("\nstop requested: arrivals halted, queue drained via "
                "flush rounds\n");
  }

  std::printf("\n%zu arrivals -> %zu rounds, %zu dispatched, %zu dropped "
              "(%zu capacity + %zu expired), %zu retrains\n",
              result.counters.arrivals, result.counters.rounds,
              result.queue.dispatched, result.queue.dropped_total(),
              result.queue.dropped_capacity, result.queue.expired,
              result.counters.retrains);
  std::printf("totals: %s\n", result.total.summary().c_str());

  // Fold the experiment-level summary into the same registry, then render
  // everything — engine stages, queue, drift, solver, pool — as one
  // Prometheus text exposition.
  result.total.to_registry(registry);
  journal.flush();
  // Drain the retained stage spans alongside the journal so a cut-short
  // run still leaves its last traces on disk.
  obs::JsonlWriter spans("online_platform.spans");
  const std::size_t drained = trace.drain_to(spans);
  spans.flush();
  std::printf("\njournal: online_platform.jsonl (%zu records); "
              "online_platform.spans holds the last %zu spans\n",
              journal.records_written(), drained);

  // SLO state at shutdown — the same rows GET /alerts serves live — plus
  // the sampled task traces to their own JSONL file.
  const double end_hours =
      result.rounds.empty() ? 0.0 : result.rounds.back().close_hours;
  std::printf("\nSLO state at t=%.2fh:\n%s", end_hours,
              obs::slo_summary_table(slo.evaluate(end_hours)).c_str());
  if (alert_log.has_value()) {
    alert_log->flush();
    std::printf("alert log: %s (%zu transitions)\n", alert_log_path.c_str(),
                alert_log->records_written());
  }
  if (webhook.has_value()) {
    // Detach the sink before draining so the sender can quiesce without
    // racing new transitions, then give in-flight deliveries a moment.
    slo.set_alert_sink(nullptr);
    webhook->flush(2.0);
    std::printf("alert webhook: %llu delivered, %llu failed, %llu "
                "dropped\n",
                static_cast<unsigned long long>(webhook->delivered_total()),
                static_cast<unsigned long long>(webhook->failed_total()),
                static_cast<unsigned long long>(webhook->dropped_total()));
  }
  if (flight.has_value()) {
    // Orderly flight-recorder teardown: watchdog first, then the crash
    // handlers and the process-wide default (ratekeeper / pool lookups),
    // then a final black-box dump so every run leaves its last events on
    // disk even without a crash.
    flight->stop_watchdog();
    obs::install_crash_handlers(nullptr, nullptr);
    obs::set_default_flight(nullptr);
    flight->dump_jsonl("online_platform.flight", "shutdown");
    std::printf("flight recorder: %llu events (%llu dropped), %llu "
                "watchdog stalls; dump at online_platform.flight\n",
                static_cast<unsigned long long>(flight->events_total()),
                static_cast<unsigned long long>(flight->dropped_total()),
                static_cast<unsigned long long>(flight->watchdog_stalls()));
  }
  if (profiler.has_value()) {
    // Detach the process default before the profiler dies so late worker
    // lookups resolve to null instead of a dying instance.
    obs::set_default_profiler(nullptr);
    std::printf("sampling profiler: %llu sessions, %llu samples across "
                "%zu registered threads\n",
                static_cast<unsigned long long>(profiler->sessions_total()),
                static_cast<unsigned long long>(profiler->samples_total()),
                profiler->threads_registered());
  }
  if (storage.has_value()) {
    const storage::StorageStatus st = storage->status();
    std::printf("\nstorage: %llu WAL records (%llu bytes, %llu fsyncs, "
                "%llu segments), %llu checkpoints (generation %llu), "
                "%llu journal chunks (%llu records, %llu evicted)\n",
                static_cast<unsigned long long>(st.wal_records),
                static_cast<unsigned long long>(st.wal_bytes),
                static_cast<unsigned long long>(st.wal_fsyncs),
                static_cast<unsigned long long>(st.wal_segments),
                static_cast<unsigned long long>(st.checkpoints),
                static_cast<unsigned long long>(st.checkpoint_generation),
                static_cast<unsigned long long>(st.chunks),
                static_cast<unsigned long long>(st.chunk_records),
                static_cast<unsigned long long>(st.chunks_evicted));
  }
  if (ratekeeper.has_value()) {
    const control::RatekeeperStatus rk = ratekeeper->status();
    std::printf("\nratekeeper: rate %.1f tasks/h, limiting=%s, "
                "pressure %.2f; %llu ticks (%llu decreases, %llu "
                "recoveries); buckets admitted %llu / throttled %llu "
                "across %zu clients\n",
                rk.rate_per_hour, control::to_string(rk.limiting).c_str(),
                rk.pressure, static_cast<unsigned long long>(rk.ticks),
                static_cast<unsigned long long>(rk.decreases),
                static_cast<unsigned long long>(rk.recoveries),
                static_cast<unsigned long long>(buckets->admitted_total()),
                static_cast<unsigned long long>(buckets->throttled_total()),
                buckets->size());
  }
  if (trace_sample > 0.0) {
    obs::JsonlWriter tasktraces("online_platform.tasktraces");
    std::printf("task traces: %llu begun, %llu evicted; drained %zu to "
                "online_platform.tasktraces\n",
                static_cast<unsigned long long>(task_traces.begun()),
                static_cast<unsigned long long>(task_traces.evicted()),
                task_traces.size());
    task_traces.drain_to(tasktraces, gateway_mode ? "gateway" : "batch");
    tasktraces.flush();
  }
  // Quantiles the scrape-side would derive from the histogram buckets —
  // printed here from the same estimator the exposition's _quantile
  // gauges use.
  std::printf("\nstage latency quantiles:\n");
  for (const auto& h : registry.snapshot().histograms) {
    if (h.name.rfind("mfcp_engine_stage_seconds", 0) != 0 || h.count == 0) {
      continue;
    }
    std::printf("  %-44s p50 %7.3fms  p90 %7.3fms  p99 %7.3fms\n",
                h.name.c_str(), 1e3 * obs::histogram_quantile(h, 0.5),
                1e3 * obs::histogram_quantile(h, 0.9),
                1e3 * obs::histogram_quantile(h, 0.99));
  }

  std::printf("\n-- metrics exposition --\n%s",
              obs::to_prometheus(registry.snapshot()).c_str());

  // Persist what the online trainer learned.
  eng.checkpoint("online_platform.ckpt");
  std::printf("engine state checkpointed to online_platform.ckpt\n");
  return 0;
}
