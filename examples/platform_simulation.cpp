// End-to-end platform simulation: a computing resource exchange platform
// operating over a stream of matching rounds.
//
// Each round, users submit a batch of deep-learning jobs; the platform
// predicts per-cluster performance, solves the matching, dispatches, and
// the failure-injection simulator decides which jobs actually complete.
// At the end we compare the achieved success rate and utilization against
// what the predictor promised — the operational view of the paper's
// metrics.
//
// Run:  ./build/examples/platform_simulation
#include <cstdio>

#include "matching/objective.hpp"
#include "mfcp/experiment.hpp"
#include "sim/failure.hpp"

using namespace mfcp;

int main() {
  core::ExperimentConfig config;
  config.setting = sim::Setting::kB;
  config.num_clusters = 4;
  config.round_tasks = 6;
  config.train_tasks = 100;
  config.test_tasks = 60;
  config.tsm.epochs = 250;
  const std::size_t rounds = 12;

  std::printf("== Exchange platform simulation (setting %s, %zu clusters, "
              "%zu rounds of %zu jobs) ==\n",
              sim::to_string(config.setting).c_str(), config.num_clusters,
              rounds, config.round_tasks);
  const auto ctx = core::make_context(config);

  Rng init(0x51caffeULL);
  core::PlatformPredictor predictor(config.num_clusters, config.predictor,
                                    init);
  core::train_tsm(predictor, ctx.train, config.tsm);

  Rng stream(0xd15a7c4ULL);
  RunningStats makespans;
  RunningStats success;
  RunningStats utilization;
  std::vector<double> cluster_hours(config.num_clusters, 0.0);

  for (std::size_t round = 0; round < rounds; ++round) {
    // Users submit a batch drawn from the unseen test pool.
    const auto order = stream.permutation(ctx.test.num_tasks());
    std::vector<sim::TaskDescriptor> jobs;
    Matrix features(config.round_tasks, ctx.test.feature_dim());
    matching::MatchingProblem truth;
    truth.times = Matrix(config.num_clusters, config.round_tasks);
    truth.reliability = Matrix(config.num_clusters, config.round_tasks);
    truth.gamma = config.gamma;
    for (std::size_t k = 0; k < config.round_tasks; ++k) {
      const std::size_t j = order[k];
      jobs.push_back(ctx.test.tasks[j]);
      for (std::size_t c = 0; c < ctx.test.feature_dim(); ++c) {
        features(k, c) = ctx.test.features(j, c);
      }
      for (std::size_t i = 0; i < config.num_clusters; ++i) {
        truth.times(i, k) = ctx.test.true_times(i, j);
        truth.reliability(i, k) = ctx.test.true_reliability(i, j);
      }
    }

    const auto predicted = truth.with_metrics(
        predictor.predict_time_matrix(features),
        predictor.predict_reliability_matrix(features));
    const auto plan = core::deploy_matching(predicted, config.eval);
    const auto run = sim::execute_assignment(ctx.platform, jobs, plan,
                                             stream, /*max_attempts=*/2);

    makespans.add(run.makespan_hours);
    success.add(run.empirical_success_rate);
    utilization.add(
        matching::utilization(plan, truth.times, truth.speedup));
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      cluster_hours[static_cast<std::size_t>(plan[k])] +=
          truth.times(static_cast<std::size_t>(plan[k]), k);
    }
    std::printf(
        "round %2zu: makespan %5.2fh  first-try success %4.0f%%  "
        "utilization %.2f\n",
        round, run.makespan_hours, 100.0 * run.empirical_success_rate,
        matching::utilization(plan, truth.times, truth.speedup));
  }

  std::printf("\nsummary over %zu rounds:\n", rounds);
  std::printf("  makespan    %s h\n",
              format_mean_std(makespans.mean(), makespans.stddev()).c_str());
  std::printf("  success     %s (target gamma = %.2f)\n",
              format_mean_std(success.mean(), success.stddev()).c_str(),
              config.gamma);
  std::printf("  utilization %s\n",
              format_mean_std(utilization.mean(), utilization.stddev())
                  .c_str());
  std::printf("  busy hours per cluster:");
  for (std::size_t i = 0; i < cluster_hours.size(); ++i) {
    std::printf(" %s=%.1f", ctx.platform.cluster(i).name().c_str(),
                cluster_hours[i]);
  }
  std::printf("\n");
  return 0;
}
