// Parallel task execution scenario (paper §3.4 / Table 2).
//
// Clusters run multiple jobs concurrently with a diminishing speedup
// ζ(n) decaying exponentially from 1 to 0.6. The matching objective is no
// longer convex, so MFCP-AD is out; MFCP-FG trains through the matching
// layer with zeroth-order gradients (Algorithm 2), its perturbed solves
// spread across a thread pool.
//
// Run:  ./build/examples/parallel_cluster_scheduling
#include <cstdio>

#include "mfcp/experiment.hpp"

using namespace mfcp;

namespace {

void print_row(const core::MethodResult& r) {
  std::printf("%-10s %-18s %-18s %-18s %7.1fs\n", r.label.c_str(),
              format_mean_std(r.metrics.regret().mean(),
                              r.metrics.regret().stddev())
                  .c_str(),
              format_mean_std(r.metrics.reliability().mean(),
                              r.metrics.reliability().stddev())
                  .c_str(),
              format_mean_std(r.metrics.utilization().mean(),
                              r.metrics.utilization().stddev())
                  .c_str(),
              r.train_seconds);
}

}  // namespace

int main() {
  core::ExperimentConfig config;
  config.setting = sim::Setting::kA;
  config.num_clusters = 3;
  config.round_tasks = 8;  // parallelism only matters with enough tasks
  config.train_tasks = 80;
  config.test_tasks = 40;
  config.test_rounds = 10;
  config.speedup = sim::SpeedupCurve::exponential_decay(0.6, 0.4);
  config.predictor.hidden = {8};
  config.tsm.epochs = 250;
  config.mfcp.epochs = 40;
  config.mfcp.pretrain_epochs = 250;
  config.mfcp.forward_gradient.samples = 8;

  std::printf("== Parallel task execution (zeta: %s) ==\n",
              config.speedup.describe().c_str());
  const auto ctx = core::make_context(config);

  ThreadPool pool;
  std::printf("%-10s %-18s %-18s %-18s %8s\n", "Method", "Regret",
              "Reliability", "Utilization", "train");
  for (core::Method m : {core::Method::kTam, core::Method::kTsm,
                         core::Method::kUcb, core::Method::kMfcpFg}) {
    print_row(core::run_method(m, ctx, config, &pool));
  }
  std::printf(
      "\nMFCP-AD is excluded: the speedup curve makes the objective "
      "non-convex (paper §4.5).\n");
  return 0;
}
