// Microbenchmarks for the matching solvers across problem scale: the
// per-iteration objective/gradient, the relaxed solvers, the exact
// branch-and-bound, and the rounding pipeline. Complexity reference:
// Eq. (21) — O(K1 * MN) for the inner solve.
#include <benchmark/benchmark.h>

#include "matching/barrier.hpp"
#include "matching/rounding.hpp"
#include "matching/solver_exact.hpp"
#include "matching/solver_gd.hpp"
#include "matching/solver_mirror.hpp"
#include "support/rng.hpp"

namespace {

using namespace mfcp;
using namespace mfcp::matching;

MatchingProblem make_problem(std::size_t m, std::size_t n,
                             std::uint64_t seed = 7) {
  Rng rng(seed);
  MatchingProblem p;
  p.times = Matrix(m, n);
  p.reliability = Matrix(m, n);
  for (std::size_t i = 0; i < p.times.size(); ++i) {
    p.times[i] = rng.uniform(0.3, 3.0);
    p.reliability[i] = rng.uniform(0.55, 0.98);
  }
  p.gamma = 0.7;
  return p;
}

void BM_ObjectiveGradient(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto p = make_problem(m, n);
  BarrierObjective f(p);
  const Matrix x = uniform_start(m, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.grad_x(x));
  }
}
BENCHMARK(BM_ObjectiveGradient)->Args({3, 5})->Args({3, 25})->Args({8, 50});

void BM_MirrorSolve(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto p = make_problem(m, n);
  BarrierObjective f(p);
  MirrorSolverConfig cfg;
  cfg.max_iterations = 400;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_mirror(f, cfg));
  }
}
BENCHMARK(BM_MirrorSolve)->Args({3, 5})->Args({3, 25})->Args({8, 50});

void BM_AlgorithmOneSolve(benchmark::State& state) {
  // The paper-literal projected-GD solver, for comparison with mirror
  // descent at equal iteration budget.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto p = make_problem(m, n);
  BarrierObjective f(p);
  GdSolverConfig cfg;
  cfg.max_iterations = 400;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_gd(f, cfg));
  }
}
BENCHMARK(BM_AlgorithmOneSolve)->Args({3, 5})->Args({3, 25});

void BM_ExactBranchAndBound(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto p = make_problem(m, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_exact(p));
  }
}
BENCHMARK(BM_ExactBranchAndBound)
    ->Args({3, 5})
    ->Args({3, 15})
    ->Args({3, 25})
    ->Args({4, 12});

void BM_ExactEnumeration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = make_problem(3, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_enumeration(p));
  }
}
BENCHMARK(BM_ExactEnumeration)->Arg(5)->Arg(9);

void BM_GreedyLpt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = make_problem(3, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_greedy(p));
  }
}
BENCHMARK(BM_GreedyLpt)->Arg(5)->Arg(25)->Arg(100);

void BM_RoundAndRepair(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = make_problem(3, n);
  BarrierObjective f(p);
  MirrorSolverConfig cfg;
  cfg.max_iterations = 300;
  const auto relaxed = solve_mirror(f, cfg);
  for (auto _ : state) {
    auto a = round_with_repair(relaxed.x, p);
    benchmark::DoNotOptimize(improve_local_search(a, p));
  }
}
BENCHMARK(BM_RoundAndRepair)->Arg(5)->Arg(25);

}  // namespace
