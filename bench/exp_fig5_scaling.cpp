// Reproduces Figure 5 of the paper: Regret and Cluster Utilization as the
// number of tasks per matching round grows (setting A, all five methods).
//
// Expected shape (paper §4.4): regret grows roughly linearly in N for all
// methods, with MFCP-AD ≈ MFCP-FG lowest throughout; utilization rises
// with N for every method, ordered MFCP > UCB > TSM > TAM.
//
// Run:  ./build/bench/exp_fig5_scaling            (N = 5, 10, 15, 20, 25)
//       ./build/bench/exp_fig5_scaling --quick    (N = 5, 10)
#include <cstdio>
#include <cstring>

#include "mfcp/experiment.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

using namespace mfcp;

int main(int argc, char** argv) {
  // Default: a compute-matched sweep that a single core regenerates in
  // minutes. --full extends to the paper's N = 25; --quick shrinks to two
  // points for smoke testing.
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  std::vector<std::size_t> task_counts = {5, 10, 15, 20};
  if (quick) {
    task_counts = {5, 10};
  } else if (full) {
    task_counts = {5, 10, 15, 20, 25};
  }
  const std::vector<core::Method> methods = {
      core::Method::kTam, core::Method::kTsm, core::Method::kUcb,
      core::Method::kMfcpAd, core::Method::kMfcpFg};

  std::printf("== Figure 5: scaling the number of tasks per round ==\n");
  ThreadPool pool;
  Stopwatch total;
  Table regret_table({"N", "TAM", "TSM", "UCB", "MFCP-AD", "MFCP-FG"});
  Table util_table({"N", "TAM", "TSM", "UCB", "MFCP-AD", "MFCP-FG"});

  for (const std::size_t n : task_counts) {
    core::ExperimentConfig cfg;
    cfg.setting = sim::Setting::kA;
    cfg.num_clusters = 3;
    cfg.round_tasks = n;
    cfg.train_tasks = 60;
    cfg.test_tasks = std::max<std::size_t>(60, 2 * n);
    cfg.test_rounds = 20;
    cfg.gamma = 0.75;
    cfg.predictor.hidden = {2};
    cfg.tsm.epochs = 300;
    cfg.mfcp.pretrain_epochs = 300;
    cfg.mfcp_ad.pretrain_epochs = 300;
    // Compute-matched training across N: the per-epoch solve cost grows
    // with N, so the epoch budget shrinks accordingly.
    cfg.mfcp.epochs = std::max<std::size_t>(30, 200 / n);
    cfg.mfcp.forward_gradient.samples = 8;
    // Larger N makes the exact reference solve harder; keep B&B bounded
    // (anytime incumbent documented in EXPERIMENTS.md).
    cfg.eval.exact.node_budget = 20'000'000;

    const auto ctx = core::make_context(cfg);
    std::vector<std::string> regret_row = {std::to_string(n)};
    std::vector<std::string> util_row = {std::to_string(n)};
    for (const auto method : methods) {
      const auto result = core::run_method(method, ctx, cfg, &pool);
      regret_row.push_back(
          format_mean_std(result.metrics.regret().mean(),
                          result.metrics.regret().stddev()));
      util_row.push_back(
          format_mean_std(result.metrics.utilization().mean(),
                          result.metrics.utilization().stddev()));
      std::printf("  [N=%zu] %-8s done (train %.1fs)\n", n,
                  result.label.c_str(), result.train_seconds);
    }
    regret_table.add_row(std::move(regret_row));
    util_table.add_row(std::move(util_row));
  }

  std::printf("\nRegret vs N:\n%s\n", regret_table.to_string().c_str());
  std::printf("Utilization vs N:\n%s\n", util_table.to_string().c_str());
  regret_table.write_csv("fig5_regret.csv");
  util_table.write_csv("fig5_utilization.csv");
  std::printf("CSVs written to fig5_regret.csv / fig5_utilization.csv "
              "(%.1fs total)\n",
              total.seconds());
  return 0;
}
