// Microbenchmarks for the durability layer's hot paths: WAL appends
// across the group-commit fsync cadences (0 = never, 1 = every record,
// 64/256 = grouped), payload encode/CRC in isolation, directory scans at
// recovery time, and chunked-journal appends. The append benchmarks bound
// the latency the WAL adds in front of every /submit 200 — one write()
// plus, on the cadence, one fsync.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "storage/chunk_store.hpp"
#include "storage/wal.hpp"

namespace {

using namespace mfcp;
namespace fs = std::filesystem;

/// Fresh scratch directory per benchmark run, wiped on destruction.
struct BenchDir {
  fs::path path;

  explicit BenchDir(const std::string& name)
      : path(fs::temp_directory_path() /
             ("mfcp_micro_wal_" + std::to_string(::getpid()) + "_" +
              name)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~BenchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

storage::WalRecord accepted_record(std::uint64_t id) {
  storage::WalRecord rec;
  rec.type = storage::WalRecordType::kAccepted;
  rec.task_id = id;
  rec.hours = 0.25 * static_cast<double>(id);
  rec.deadline_hours = rec.hours + 2.0;
  rec.task.family = sim::TaskFamily::kTransformer;
  rec.task.depth = 12;
  rec.task.width = 256;
  rec.task.batch_size = 64;
  rec.task.dataset_fraction = 0.5;
  return rec;
}

void BM_WalEncodePayload(benchmark::State& state) {
  const storage::WalRecord rec = accepted_record(42);
  unsigned char buf[storage::kWalPayloadBytes];
  for (auto _ : state) {
    storage::encode_wal_payload(rec, buf);
    benchmark::DoNotOptimize(
        storage::crc32(buf, storage::kWalPayloadBytes));
  }
}
BENCHMARK(BM_WalEncodePayload);

/// Append throughput at a given fsync cadence (the benchmark arg):
/// 0 = never fsync, 1 = fsync every record, N = group commit every N.
void BM_WalAppend(benchmark::State& state) {
  BenchDir dir("append_" + std::to_string(state.range(0)));
  storage::WalConfig cfg{dir.path.string()};
  cfg.fsync_every = static_cast<std::size_t>(state.range(0));
  storage::TaskWal wal(cfg);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.append(accepted_record(id++)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(id));
  state.SetBytesProcessed(static_cast<std::int64_t>(
      id * (storage::kWalHeaderBytes + storage::kWalPayloadBytes)));
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(1)->Arg(64)->Arg(256);

/// Recovery-time cost: scanning a directory of `arg` valid records.
void BM_WalScan(benchmark::State& state) {
  BenchDir dir("scan_" + std::to_string(state.range(0)));
  {
    storage::WalConfig cfg{dir.path.string()};
    cfg.fsync_every = 0;
    storage::TaskWal wal(cfg);
    for (std::int64_t id = 0; id < state.range(0); ++id) {
      wal.append(accepted_record(static_cast<std::uint64_t>(id)));
    }
    wal.sync();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        storage::scan_wal(dir.path.string(), false));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WalScan)->Arg(1000)->Arg(10000);

void BM_ChunkAppend(benchmark::State& state) {
  BenchDir dir("chunk_append");
  storage::ChunkStoreConfig cfg{dir.path.string()};
  cfg.max_chunks = 8;
  storage::ChunkStore store(cfg);
  const std::string line =
      R"({"record":"round","round":1,"close_hours":0.0,"batch":6,)"
      R"("regret":0.125,"reliability":0.94})";
  double hours = 0.0;
  for (auto _ : state) {
    store.append(hours, line);
    hours += 0.01;  // ~100 records per chunk window
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(line.size() + 1));
}
BENCHMARK(BM_ChunkAppend);

}  // namespace
