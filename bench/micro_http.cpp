// Microbenchmarks for the socket-free HTTP core and the gateway routing
// path: request-head parsing, response serialization, flat-JSON submit
// parsing, and the full route_gateway_request dispatch for the hot routes
// (POST /submit and GET /task/<id>). These bound the per-request CPU cost
// the gateway adds on top of the engine's round loop — everything here is
// pure string work, no sockets.
#include <benchmark/benchmark.h>

#include <string>

#include "engine/service.hpp"
#include "net/gateway.hpp"
#include "net/http.hpp"

namespace {

using namespace mfcp;
using namespace mfcp::net;

const std::string kSubmitHead =
    "POST /submit HTTP/1.1\r\n"
    "Host: 127.0.0.1:8080\r\n"
    "User-Agent: loadgen/1\r\n"
    "Accept: */*\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 96\r\n";

const std::string kSubmitBody =
    "{\"family\":\"transformer\",\"dataset\":\"europarl\",\"depth\":12,"
    "\"width\":256,\"batch_size\":32,\"dataset_fraction\":0.5}";

void BM_ParseRequestHead(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_request_head(kSubmitHead));
  }
}
BENCHMARK(BM_ParseRequestHead);

void BM_SerializeResponse(benchmark::State& state) {
  const HttpResponse response =
      json_response(200, "{\"accepted\":true,\"id\":1099511627776,"
                         "\"pressure\":3}\n");
  for (auto _ : state) {
    benchmark::DoNotOptimize(serialize_response(response));
  }
}
BENCHMARK(BM_SerializeResponse);

void BM_ParseSubmitBody(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_submit_body(kSubmitBody));
  }
}
BENCHMARK(BM_ParseSubmitBody);

void BM_RouteSubmit(benchmark::State& state) {
  // A roomy high-water mark keeps every routed request on the accept
  // path; the inbox is drained each iteration so pressure stays flat.
  engine::GatewayLinkConfig cfg;
  cfg.max_pending = 1 << 16;
  cfg.high_water = 1 << 16;
  engine::GatewayLink link(cfg);
  HttpRequest request;
  request.method = "POST";
  request.path = "/submit";
  request.version = "HTTP/1.1";
  request.body = kSubmitBody;
  request.valid = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_gateway_request(request, link, nullptr));
    (void)link.drain();
  }
}
BENCHMARK(BM_RouteSubmit);

void BM_RouteTaskStatus(benchmark::State& state) {
  engine::GatewayLink link;
  const engine::SubmitTicket ticket = link.submit(sim::TaskDescriptor{});
  HttpRequest request;
  request.method = "GET";
  request.path = "/task/" + std::to_string(ticket.id);
  request.version = "HTTP/1.1";
  request.valid = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_gateway_request(request, link, nullptr));
  }
}
BENCHMARK(BM_RouteTaskStatus);

void BM_RouteStats(benchmark::State& state) {
  engine::GatewayLink link;
  HttpRequest request;
  request.method = "GET";
  request.path = "/stats";
  request.version = "HTTP/1.1";
  request.valid = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_gateway_request(request, link, nullptr));
  }
}
BENCHMARK(BM_RouteStats);

}  // namespace
