// Reproduces Table 1 of the paper: ablation of MFCP's gradient-computation
// design in the exclusive (convex) setting.
//
//   (1) Maximum Loss       — replace the smoothed max-makespan cost with a
//                            linear total-time cost (trained with forward
//                            gradients: the linear argmin has no useful
//                            analytic sensitivity, which is the point);
//   (2) Interior-Point     — replace the log barrier with a hard hinge
//                            penalty (trained with MFCP-AD: the penalty's
//                            cross-Hessian w.r.t. Â vanishes a.e., starving
//                            the reliability predictor of gradient);
//   (3) Zeroth-order       — full objective, gradients estimated by
//                            perturbation (MFCP-FG) instead of analytic;
//   MFCP                   — full method with analytic differentiation.
//
// Expected shape (paper §4.2): (1) worst regret and utilization; (2) worst
// reliability; (3) ≈ MFCP on all three metrics.
//
// Run:  ./build/bench/exp_table1_ablation
//       ./build/bench/exp_table1_ablation --metrics table1.prom
//           additionally exports per-variant results as Prometheus text.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "mfcp/experiment.hpp"
#include "obs/sinks.hpp"
#include "support/table.hpp"

using namespace mfcp;

namespace {

std::string cell(const RunningStats& s) {
  return format_mean_std(s.mean(), s.stddev());
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--metrics") == 0 && k + 1 < argc) {
      metrics_path = argv[++k];
    } else {
      std::fprintf(stderr, "usage: %s [--metrics <path>]\n", argv[0]);
      return 2;
    }
  }
  core::ExperimentConfig cfg;
  cfg.setting = sim::Setting::kC;
  cfg.num_clusters = 3;
  cfg.round_tasks = 5;
  cfg.train_tasks = 60;
  cfg.test_tasks = 60;
  cfg.test_rounds = 40;
  cfg.gamma = 0.75;
  cfg.predictor.hidden = {2};
  cfg.tsm.epochs = 300;
  cfg.mfcp.pretrain_epochs = 300;
  cfg.mfcp_ad.pretrain_epochs = 300;

  std::printf("== Table 1: ablation study of MFCP ==\n");
  obs::MetricsRegistry registry;
  if (!metrics_path.empty()) {
    obs::set_default_registry(&registry);
  }
  const auto ctx = core::make_context(cfg);
  ThreadPool pool;

  struct Variant {
    std::string label;
    core::CostModel cost;
    core::ConstraintModel constraint;
    core::GradMode grad;
  };
  const std::vector<Variant> variants = {
      {"(1) linear loss", core::CostModel::kLinearTotal,
       core::ConstraintModel::kLogBarrier, core::GradMode::kForward},
      {"(2) hard penalty", core::CostModel::kSmoothedMax,
       core::ConstraintModel::kHardPenalty, core::GradMode::kForward},
      {"(3) zeroth-order", core::CostModel::kSmoothedMax,
       core::ConstraintModel::kLogBarrier, core::GradMode::kForward},
      {"MFCP", core::CostModel::kSmoothedMax,
       core::ConstraintModel::kLogBarrier, core::GradMode::kAnalytic},
  };

  Table table({"Metric", "Regret", "Reliability", "Utilization"});
  for (const auto& v : variants) {
    const auto result = core::run_mfcp_variant(v.cost, v.constraint, v.grad,
                                               v.label, ctx, cfg, &pool);
    if (!metrics_path.empty()) {
      result.metrics.to_registry(registry, "mfcp_eval",
                                 "variant=\"" + v.label + "\"");
    }
    table.add_row({v.label, cell(result.metrics.regret()),
                   cell(result.metrics.reliability()),
                   cell(result.metrics.utilization())});
    std::printf("  %-17s done (train %.1fs)\n", v.label.c_str(),
                result.train_seconds);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv("table1_ablation.csv");
  if (!metrics_path.empty()) {
    obs::set_default_registry(nullptr);
    std::ofstream out(metrics_path);
    out << obs::to_prometheus(registry.snapshot());
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  std::printf("CSV written to table1_ablation.csv\n");
  return 0;
}
