// Reproduces Figure 4 of the paper: overall performance of the five
// methods (TAM, TSM, UCB, MFCP-AD, MFCP-FG) on three cluster environments
// (settings A, B, C), reported as Regret / Reliability / Utilization with
// mean ± std over repeated matching rounds.
//
// Expected shape (paper §4.3): MFCP-AD ≈ MFCP-FG achieve the lowest
// regret; UCB sits between TSM and MFCP; TAM is environment-dependent and
// weakest overall; MFCP attains the highest utilization and (thanks to the
// barrier) reliability at or above the baselines.
//
// Run:  ./build/bench/exp_fig4_overall            (full: 3 settings)
//       ./build/bench/exp_fig4_overall --quick    (setting A only)
//       ./build/bench/exp_fig4_overall --metrics fig4.prom
//           additionally exports every per-method result (and the solver/
//           pool internals, via the default registry) as Prometheus text.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "mfcp/experiment.hpp"
#include "obs/sinks.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

using namespace mfcp;

namespace {

core::ExperimentConfig base_config() {
  core::ExperimentConfig cfg;
  cfg.num_clusters = 3;
  cfg.round_tasks = 5;  // the paper's headline: 5 tasks, 3 clusters
  cfg.train_tasks = 60;
  cfg.test_tasks = 60;
  cfg.test_rounds = 40;
  cfg.gamma = 0.75;
  cfg.predictor.hidden = {2};  // limited capacity (paper §3: predictors
                               // cannot model the laws exactly)
  cfg.tsm.epochs = 300;
  cfg.mfcp.pretrain_epochs = 300;
  cfg.mfcp_ad.pretrain_epochs = 300;
  return cfg;
}

std::string cell(const RunningStats& s) {
  return format_mean_std(s.mean(), s.stddev());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string metrics_path;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[k], "--metrics") == 0 && k + 1 < argc) {
      metrics_path = argv[++k];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--metrics <path>]\n",
                   argv[0]);
      return 2;
    }
  }
  std::vector<sim::Setting> settings = {sim::Setting::kA, sim::Setting::kB,
                                        sim::Setting::kC};
  if (quick) {
    settings = {sim::Setting::kA};
  }

  const std::vector<core::Method> methods = {
      core::Method::kTam, core::Method::kTsm, core::Method::kUcb,
      core::Method::kMfcpAd, core::Method::kMfcpFg};

  std::printf("== Figure 4: overall performance across settings ==\n");
  // With --metrics, the default registry also captures the solver and
  // thread-pool internals of every run alongside the per-method results.
  obs::MetricsRegistry registry;
  if (!metrics_path.empty()) {
    obs::set_default_registry(&registry);
  }
  ThreadPool pool;
  Stopwatch total;
  Table table({"Setting", "Method", "Regret", "Reliability", "Utilization"});
  for (const auto setting : settings) {
    auto cfg = base_config();
    cfg.setting = setting;
    const auto ctx = core::make_context(cfg);
    for (const auto method : methods) {
      const auto result = core::run_method(method, ctx, cfg, &pool);
      if (!metrics_path.empty()) {
        result.metrics.to_registry(registry, "mfcp_eval",
                                   "setting=\"" + sim::to_string(setting) +
                                       "\",method=\"" + result.label + "\"");
      }
      table.add_row({sim::to_string(setting), result.label,
                     cell(result.metrics.regret()),
                     cell(result.metrics.reliability()),
                     cell(result.metrics.utilization())});
      std::printf("  [%s] %-8s done (train %.1fs)\n",
                  sim::to_string(setting).c_str(), result.label.c_str(),
                  result.train_seconds);
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv("fig4_overall.csv");
  if (!metrics_path.empty()) {
    obs::set_default_registry(nullptr);
    std::ofstream out(metrics_path);
    out << obs::to_prometheus(registry.snapshot());
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  std::printf("CSV written to fig4_overall.csv (%.1fs total)\n",
              total.seconds());
  return 0;
}
