// Reproduces the *motivating example* of Figure 2 (paper §2.2): linear
// regression predictors on clusters with different scaling laws.
//
// Setup distilled from the figure: Cluster A's execution time grows
// linearly with the task size feature z; Cluster B's grows exponentially
// (slow start, explosive tail). A linear (MSE-optimal) predictor for B
// must average over the curve, over-predicting B in the mid-range — so
// the predict-then-match pipeline misassigns exactly the mid-range tasks
// (the figure's "Task 2"). Reweighting B's fit toward the tasks the
// matching actually routes to B (the paper's cluster-specific task
// preferences) fixes the assignment without fixing the MSE.
//
// Run:  ./build/bench/exp_fig2_motivation
#include <cmath>
#include <cstdio>
#include <string>

#include "matching/objective.hpp"
#include "mfcp/linear_model.hpp"
#include "mfcp/regret.hpp"
#include "support/table.hpp"

using namespace mfcp;

namespace {

/// Ground-truth laws of the two clusters as in the figure.
double cluster_a_time(double z) { return 1.0 + 2.0 * z; }           // linear
double cluster_b_time(double z) { return 0.4 * std::exp(1.8 * z); }  // exp

}  // namespace

int main() {
  std::printf("== Figure 2: why MSE-optimal predictions mis-assign ==\n\n");

  // Profiling data: tasks spread over the size feature z in [0, 2].
  const std::size_t samples = 40;
  sim::Dataset train;
  train.features = Matrix(samples, 1);
  train.times = Matrix(2, samples);
  train.reliability = Matrix(2, samples, 0.95);
  train.true_times = Matrix(2, samples);
  train.true_reliability = Matrix(2, samples, 0.95);
  train.tasks.resize(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const double z = 2.0 * static_cast<double>(i) / (samples - 1);
    train.features(i, 0) = z;
    train.times(0, i) = train.true_times(0, i) = cluster_a_time(z);
    train.times(1, i) = train.true_times(1, i) = cluster_b_time(z);
  }

  // MSE-optimal linear fits (the paper's dashed lines).
  const core::LinearPlatformModel mse_fit(train);

  // Decision-focused reweighting: emphasize, in each cluster's fit, the
  // tasks that cluster actually wins under the truth (the "cluster-
  // specific task preferences" of §2.2).
  Matrix weights(2, samples, 0.02);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t winner =
        train.true_times(0, i) <= train.true_times(1, i) ? 0 : 1;
    weights(winner, i) = 1.0;
  }
  const core::LinearPlatformModel dfl_fit(train, weights);

  // The figure's three probe tasks: small / mid / large.
  const std::vector<double> probes = {0.3, 1.05, 1.9};
  Table table({"Task (z)", "true A", "true B", "MSE Â", "MSE B̂",
               "DFL Â", "DFL B̂", "truth→", "MSE→", "DFL→"});
  int mse_errors = 0;
  int dfl_errors = 0;
  for (double z : probes) {
    Matrix f(1, 1, z);
    const Matrix mse_t = mse_fit.predict_time_matrix(f);
    const Matrix dfl_t = dfl_fit.predict_time_matrix(f);
    const double ta = cluster_a_time(z);
    const double tb = cluster_b_time(z);
    const char* truth = ta <= tb ? "A" : "B";
    const char* mse = mse_t(0, 0) <= mse_t(1, 0) ? "A" : "B";
    const char* dfl = dfl_t(0, 0) <= dfl_t(1, 0) ? "A" : "B";
    mse_errors += truth != mse && std::string(truth) != mse ? 1 : 0;
    dfl_errors += std::string(truth) != dfl ? 1 : 0;
    table.add_row({Table::cell(z, 2), Table::cell(ta, 2), Table::cell(tb, 2),
                   Table::cell(mse_t(0, 0), 2), Table::cell(mse_t(1, 0), 2),
                   Table::cell(dfl_t(0, 0), 2), Table::cell(dfl_t(1, 0), 2),
                   truth, mse, dfl});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Over the whole feature range: fraction of argmin flips.
  std::size_t grid = 200;
  std::size_t mse_flips = 0;
  std::size_t dfl_flips = 0;
  for (std::size_t i = 0; i < grid; ++i) {
    const double z = 2.0 * static_cast<double>(i) / (grid - 1);
    Matrix f(1, 1, z);
    const Matrix mse_t = mse_fit.predict_time_matrix(f);
    const Matrix dfl_t = dfl_fit.predict_time_matrix(f);
    const bool truth_a = cluster_a_time(z) <= cluster_b_time(z);
    mse_flips += (mse_t(0, 0) <= mse_t(1, 0)) != truth_a ? 1 : 0;
    dfl_flips += (dfl_t(0, 0) <= dfl_t(1, 0)) != truth_a ? 1 : 0;
  }
  std::printf(
      "argmin flipped on %.0f%% of the feature range with MSE fits vs "
      "%.0f%% with decision-reweighted fits\n",
      100.0 * mse_flips / grid, 100.0 * dfl_flips / grid);
  std::printf("(paper Fig. 2: the MSE predictor routes Task 2 to the wrong "
              "cluster; preference-weighted fitting corrects it)\n");
  return 0;
}
