// Reproduces Table 2 of the paper: performance under parallel task
// execution, where clusters run jobs concurrently with a speedup ratio ζ
// decaying exponentially from 1 to 0.6 (all clusters share the scheduler
// model). The matching objective becomes non-convex, so MFCP-AD is
// excluded and MFCP-FG carries the decision-focused flag (paper §4.5).
//
// Expected shape: MFCP-FG < UCB < TSM < TAM on regret (paper reports
// MFCP-FG reducing regret by 25.7% vs TSM and 18.5% vs UCB), with MFCP-FG
// highest on reliability and utilization.
//
// Run:  ./build/bench/exp_table2_parallel
//       ./build/bench/exp_table2_parallel --metrics table2.prom
//           additionally exports per-method results as Prometheus text.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "mfcp/experiment.hpp"
#include "obs/sinks.hpp"
#include "support/table.hpp"

using namespace mfcp;

int main(int argc, char** argv) {
  std::string metrics_path;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--metrics") == 0 && k + 1 < argc) {
      metrics_path = argv[++k];
    } else {
      std::fprintf(stderr, "usage: %s [--metrics <path>]\n", argv[0]);
      return 2;
    }
  }
  core::ExperimentConfig cfg;
  cfg.setting = sim::Setting::kC;
  cfg.num_clusters = 3;
  cfg.round_tasks = 8;  // enough concurrency for zeta to matter
  cfg.train_tasks = 60;
  cfg.test_tasks = 60;
  cfg.test_rounds = 40;
  cfg.gamma = 0.75;
  cfg.speedup = sim::SpeedupCurve::exponential_decay(0.6, 0.4);
  cfg.predictor.hidden = {2};
  cfg.tsm.epochs = 300;
  cfg.mfcp.pretrain_epochs = 300;
  cfg.mfcp_ad.pretrain_epochs = 300;

  std::printf("== Table 2: parallel task execution (zeta: %s) ==\n",
              cfg.speedup.describe().c_str());
  obs::MetricsRegistry registry;
  if (!metrics_path.empty()) {
    obs::set_default_registry(&registry);
  }
  const auto ctx = core::make_context(cfg);
  ThreadPool pool;

  const std::vector<core::Method> methods = {
      core::Method::kTam, core::Method::kTsm, core::Method::kUcb,
      core::Method::kMfcpFg};

  Table table({"Method", "Regret", "Reliability", "Utilization"});
  double tsm_regret = 0.0;
  double ucb_regret = 0.0;
  double fg_regret = 0.0;
  for (const auto method : methods) {
    const auto result = core::run_method(method, ctx, cfg, &pool);
    if (!metrics_path.empty()) {
      result.metrics.to_registry(registry, "mfcp_eval",
                                 "method=\"" + result.label + "\"");
    }
    table.add_row({result.label,
                   format_mean_std(result.metrics.regret().mean(),
                                   result.metrics.regret().stddev()),
                   format_mean_std(result.metrics.reliability().mean(),
                                   result.metrics.reliability().stddev()),
                   format_mean_std(result.metrics.utilization().mean(),
                                   result.metrics.utilization().stddev())});
    std::printf("  %-8s done (train %.1fs)\n", result.label.c_str(),
                result.train_seconds);
    if (method == core::Method::kTsm) {
      tsm_regret = result.metrics.regret().mean();
    } else if (method == core::Method::kUcb) {
      ucb_regret = result.metrics.regret().mean();
    } else if (method == core::Method::kMfcpFg) {
      fg_regret = result.metrics.regret().mean();
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  if (tsm_regret > 0.0 && ucb_regret > 0.0) {
    std::printf("MFCP-FG regret reduction: %.1f%% vs TSM, %.1f%% vs UCB "
                "(paper: 25.7%% / 18.5%%)\n",
                100.0 * (1.0 - fg_regret / tsm_regret),
                100.0 * (1.0 - fg_regret / ucb_regret));
  }
  table.write_csv("table2_parallel.csv");
  if (!metrics_path.empty()) {
    obs::set_default_registry(nullptr);
    std::ofstream out(metrics_path);
    out << obs::to_prometheus(registry.snapshot());
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  std::printf("CSV written to table2_parallel.csv\n");
  return 0;
}
