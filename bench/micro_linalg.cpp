// Microbenchmarks for the dense linear algebra kernels that sit on the
// MFCP hot path (GEMM for predictor batches, LU for the KKT systems).
#include <benchmark/benchmark.h>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "support/rng.hpp"

namespace {

using namespace mfcp;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng.normal();
  }
  return m;
}

Matrix random_spd(std::size_t n, Rng& rng) {
  const Matrix a = random_matrix(n, n, rng);
  Matrix spd = matmul_nt(a, a);
  for (std::size_t i = 0; i < n; ++i) {
    spd(i, i) += static_cast<double>(n);
  }
  return spd;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n *
                          n);
}
BENCHMARK(BM_Matmul)->Arg(16)->Arg(64)->Arg(128);

void BM_MatmulTransposedVariants(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_tn(a, b));
    benchmark::DoNotOptimize(matmul_nt(a, b));
  }
}
BENCHMARK(BM_MatmulTransposedVariants)->Arg(32)->Arg(96);

void BM_LuFactorAndSolve(benchmark::State& state) {
  // KKT-system-shaped solves: factor once, back-substitute one RHS.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Matrix a = random_matrix(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) += 4.0;
  }
  const Matrix rhs = random_matrix(n, 1, rng);
  for (auto _ : state) {
    LuFactorization lu(a);
    benchmark::DoNotOptimize(lu.solve(rhs));
  }
}
BENCHMARK(BM_LuFactorAndSolve)->Arg(20)->Arg(80)->Arg(160);

void BM_LuMultiRhs(benchmark::State& state) {
  // Full-Jacobian mode: one factorization, MN right-hand sides.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  Matrix a = random_matrix(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) += 4.0;
  }
  const Matrix rhs = random_matrix(n, n, rng);
  for (auto _ : state) {
    LuFactorization lu(a);
    benchmark::DoNotOptimize(lu.solve_multi(rhs));
  }
}
BENCHMARK(BM_LuMultiRhs)->Arg(20)->Arg(60);

void BM_Cholesky(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const Matrix spd = random_spd(n, rng);
  const Matrix rhs = random_matrix(n, 1, rng);
  for (auto _ : state) {
    CholeskyFactorization chol(spd);
    benchmark::DoNotOptimize(chol.solve(rhs));
  }
}
BENCHMARK(BM_Cholesky)->Arg(20)->Arg(80);

void BM_MatmulParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_parallel(pool, a, b));
  }
}
BENCHMARK(BM_MatmulParallel)->Arg(128);

}  // namespace
