// Microbenchmarks for the two matching-layer differentiation routes:
// analytic KKT (vector-Jacobian product vs full Jacobian) and zeroth-order
// forward gradients (serial vs thread pool, varying sample count S) —
// the O(S * K2 * MN) term of the complexity analysis (Eq. 21).
#include <benchmark/benchmark.h>

#include "diff/kkt.hpp"
#include "diff/zeroth_order.hpp"
#include "matching/barrier.hpp"
#include "matching/solver_mirror.hpp"
#include "support/rng.hpp"

namespace {

using namespace mfcp;
using namespace mfcp::matching;

struct Instance {
  MatchingProblem problem;
  BarrierObjective objective;
  Matrix xstar;
  Matrix upstream;
};

Instance make_instance(std::size_t m, std::size_t n) {
  Rng rng(11);
  MatchingProblem p;
  p.times = Matrix(m, n);
  p.reliability = Matrix(m, n);
  for (std::size_t i = 0; i < p.times.size(); ++i) {
    p.times[i] = rng.uniform(0.4, 2.0);
    p.reliability[i] = rng.uniform(0.6, 0.98);
  }
  p.gamma = 0.6;
  BarrierConfig bcfg;
  bcfg.beta = 4.0;
  BarrierObjective obj(p, bcfg);
  MirrorSolverConfig scfg;
  scfg.max_iterations = 1500;
  Matrix xstar = solve_mirror(obj, scfg).x;
  Matrix upstream(m, n);
  for (std::size_t i = 0; i < upstream.size(); ++i) {
    upstream[i] = rng.normal();
  }
  return Instance{std::move(p), std::move(obj), std::move(xstar),
                  std::move(upstream)};
}

void BM_KktVjp(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                                  static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        diff::kkt_vjp(inst.objective, inst.xstar, inst.upstream));
  }
}
BENCHMARK(BM_KktVjp)->Args({3, 5})->Args({3, 25})->Args({6, 40});

void BM_KktFullJacobian(benchmark::State& state) {
  // The multi-RHS route costs ~MN solves instead of one: quantifies why
  // the trainers use the adjoint VJP.
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)),
                                  static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        diff::kkt_full_jacobians(inst.objective, inst.xstar));
  }
}
BENCHMARK(BM_KktFullJacobian)->Args({3, 5})->Args({3, 15});

void BM_ZerothOrderRow(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const auto inst = make_instance(3, 5);
  const auto& p = inst.problem;
  const auto solver = [&p](const Matrix& t, const Matrix& a) {
    BarrierConfig bcfg;
    bcfg.beta = 4.0;
    BarrierObjective obj(t, a, p.gamma, bcfg);
    MirrorSolverConfig scfg;
    scfg.max_iterations = 300;
    return solve_mirror(obj, scfg).x;
  };
  diff::ForwardGradientConfig fg;
  fg.samples = samples;
  fg.delta = 0.05;
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(diff::estimate_row_gradients(
        solver, p.times, p.reliability, inst.xstar, 0, inst.upstream, fg,
        rng));
  }
  state.SetLabel("S=" + std::to_string(samples));
}
BENCHMARK(BM_ZerothOrderRow)->Arg(4)->Arg(16)->Arg(64);

void BM_ZerothOrderRowPooled(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const auto inst = make_instance(3, 5);
  const auto& p = inst.problem;
  const auto solver = [&p](const Matrix& t, const Matrix& a) {
    BarrierConfig bcfg;
    bcfg.beta = 4.0;
    BarrierObjective obj(t, a, p.gamma, bcfg);
    MirrorSolverConfig scfg;
    scfg.max_iterations = 300;
    return solve_mirror(obj, scfg).x;
  };
  diff::ForwardGradientConfig fg;
  fg.samples = samples;
  fg.delta = 0.05;
  Rng rng(13);
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(diff::estimate_row_gradients(
        solver, p.times, p.reliability, inst.xstar, 0, inst.upstream, fg,
        rng, &pool));
  }
}
BENCHMARK(BM_ZerothOrderRowPooled)->Arg(16)->Arg(64);

}  // namespace
