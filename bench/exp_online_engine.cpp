// Online platform engine experiment: frozen vs drift-aware retraining.
//
// A single pretrained TSM predictor is cloned into two identical copies,
// then each serves the SAME ≥500-arrival stream through the online engine
// (identical arrival, queue, batching, dispatch, and drift randomness — a
// paired comparison). Halfway through the stream the environment drifts:
// one cluster's hardware degrades hard (slower and flakier). The frozen
// engine keeps trusting its stale predictor; the online engine's drift
// detector trips and fine-tunes on the replay buffer.
//
// Expected shape: near-identical regret before the drift; after it, the
// online engine's rolling regret drops back toward the pre-drift level
// while the frozen engine's stays elevated.
//
// The harness also prices the telemetry layer itself: a paired run of the
// same engine with instrumentation off vs fully on (registry + trace ring
// + default registry for solver/pool metrics) reports the wall-time
// overhead against the 5% budget.
//
// Run:  ./build/bench/exp_online_engine             (writes online_engine.csv)
//       ./build/bench/exp_online_engine --quick     (short stream, no CSV)
//       ./build/bench/exp_online_engine --journal [path]
//           additionally writes one JSONL record per round, both modes,
//           tagged {"mode":...} — deterministic, so two seeded runs diff
//           clean (the CI determinism guard relies on this).
//       ./build/bench/exp_online_engine --trace-sample <rate>
//           samples task-lifecycle traces at <rate> in [0,1]; with
//           --journal they drain to <path>.tasktraces (sim-time fields
//           only, so they are as deterministic as the journal itself).
//           The round journal is byte-identical whether sampling is on or
//           off — CI compares the two directly.
//       ./build/bench/exp_online_engine --ratekeeper
//           runs both modes behind the closed-loop admission controller:
//           arrivals spend tokens from the anonymous bucket and the
//           journal gains admission_rate / throttled_total /
//           limiting_signal per round. Admission decisions ride on the
//           simulated clock only, so two seeded --ratekeeper runs still
//           produce byte-identical journals (the CI guard compares them).
//       ./build/bench/exp_online_engine --flight
//           attaches a black-box flight recorder to both mode runs
//           (engine events + process default for pool/ratekeeper events).
//           The recorder is write-only telemetry, so the round journal
//           stays byte-identical with it on — the CI determinism guard
//           compares a --flight journal against the plain baseline.
//       ./build/bench/exp_online_engine --bench-json <path>
//           writes a one-record machine-readable summary (rounds/s per
//           mode, stage latency p50/p99, mean regret-attribution terms,
//           telemetry + flight + profiler + storage overhead percentages)
//           for CI archiving. The storage arm reruns the engine with the
//           full durability stack (WAL + checkpoints + chunked journal)
//           writing into a scratch dir and prices it against the same 5%
//           budget as the telemetry stack.
//       ./build/bench/exp_online_engine --profile <path>
//           samples the online-mode run at 97 Hz with the in-process CPU
//           profiler and writes the folded flamegraph (stack lines +
//           [stage_totals] anchors) to <path>. Sampling is telemetry-only,
//           so the round journal stays byte-identical with it on — the CI
//           determinism guard compares a --profile journal against the
//           plain baseline.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include "control/ratekeeper.hpp"
#include "control/token_bucket.hpp"
#include "engine/engine.hpp"
#include "mfcp/trainer_tsm.hpp"
#include "obs/flight.hpp"
#include "obs/http_exporter.hpp"
#include "obs/profiler.hpp"
#include "obs/sinks.hpp"
#include "obs/slo.hpp"
#include "obs/trace_store.hpp"
#include "nn/serialize.hpp"
#include "sim/dataset.hpp"
#include "storage/storage.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

using namespace mfcp;

namespace {

struct Scenario {
  sim::Platform platform;
  sim::PseudoGnnEmbedder embedder;
  sim::Dataset profile_data;
};

Scenario make_scenario(std::size_t num_clusters, std::size_t profile_tasks,
                       std::uint64_t seed) {
  sim::Platform platform =
      sim::Platform::make_setting(sim::Setting::kA, num_clusters);
  sim::EmbedderConfig embed_cfg;
  embed_cfg.seed = 0xe1bedULL ^ seed;
  sim::PseudoGnnEmbedder embedder(embed_cfg);
  sim::DatasetConfig data_cfg;
  data_cfg.num_tasks = profile_tasks;
  data_cfg.task_seed = 0x7a5cULL ^ seed;
  data_cfg.noise_seed = 0x401feULL ^ seed;
  sim::Dataset data = build_dataset(platform, embedder, data_cfg);
  return Scenario{std::move(platform), std::move(embedder), std::move(data)};
}

/// Copies predictor weights through the text checkpoint (bit-exact).
void clone_weights(core::PlatformPredictor& from,
                   core::PlatformPredictor& to) {
  for (std::size_t i = 0; i < from.num_clusters(); ++i) {
    std::stringstream t_buf;
    nn::save_mlp(t_buf, from.cluster(i).time_model());
    nn::load_mlp(t_buf, to.cluster(i).time_model());
    std::stringstream a_buf;
    nn::save_mlp(a_buf, from.cluster(i).reliability_model());
    nn::load_mlp(a_buf, to.cluster(i).reliability_model());
  }
}

engine::EngineConfig engine_config(bool online, double drift_at_hours,
                                   std::size_t max_arrivals,
                                   std::size_t drift_cluster) {
  engine::EngineConfig cfg;
  cfg.arrivals.rate_per_hour = 40.0;
  cfg.arrivals.burst_factor = 3.0;
  cfg.arrivals.burst_period_hours = 2.0;
  cfg.arrivals.burst_duty = 0.25;
  cfg.arrivals.deadline_hours = 2.0;
  cfg.arrivals.max_arrivals = max_arrivals;
  cfg.arrivals.seed = 0x57a6e5ULL;
  cfg.queue.capacity = 48;
  cfg.batcher.max_batch = 6;
  cfg.batcher.max_wait_hours = 0.3;
  cfg.gamma = 0.7;
  cfg.online_retraining = online;
  cfg.profile_probability = 0.15;
  cfg.metrics_window = 12;
  cfg.trainer.retrain_epochs = 60;
  cfg.trainer.learning_rate = 8e-3;
  cfg.seed = 0xe61e0ULL;

  engine::DriftEventSpec drift;
  drift.at_hours = drift_at_hours;
  drift.cluster = drift_cluster;
  drift.drift.time_scale = 4.0;
  drift.drift.reliability_logit_shift = -1.5;
  cfg.drift_events.push_back(drift);
  return cfg;
}

/// Mean regret over rounds closing strictly after `t`.
double mean_regret_after(const std::vector<engine::RoundRecord>& rounds,
                         double t) {
  RunningStats s;
  for (const auto& r : rounds) {
    if (r.close_hours > t) {
      s.add(r.regret);
    }
  }
  return s.mean();
}

/// One frozen-mode engine run for the overhead measurement; returns the
/// engine's own wall-clock seconds. `instrumented` turns on every layer
/// of telemetry at once: explicit registry + trace ring on the engine,
/// plus the process-wide default registry feeding solver and pool metrics.
double timed_run(const Scenario& scenario,
                 core::PlatformPredictor& pretrained,
                 const engine::EngineConfig& base_cfg, ThreadPool& pool,
                 obs::MetricsRegistry* registry, obs::TraceRing* trace,
                 obs::FlightRecorder* flight = nullptr,
                 storage::StorageManager* storage = nullptr) {
  Rng clone_init(0x5eedULL);
  core::PredictorConfig pred_cfg;
  core::PlatformPredictor predictor(pretrained.num_clusters(), pred_cfg,
                                    clone_init);
  clone_weights(pretrained, predictor);
  engine::EngineConfig cfg = base_cfg;
  cfg.registry = registry;
  cfg.trace = trace;
  // The instrumented arm carries the full decision-observability stack:
  // per-round regret attribution AND a live /metrics exporter accepting
  // scrapes, so the 5% budget prices everything at once.
  cfg.attribution = registry != nullptr;
  std::unique_ptr<obs::HttpExporter> exporter;
  // The instrumented arm also prices task tracing (sampled) and the SLO
  // burn-rate monitor, so the budget covers the full stack.
  obs::TraceStore task_traces(1024);
  obs::SloMonitor slo;
  if (registry != nullptr) {
    exporter = std::make_unique<obs::HttpExporter>(
        [registry] { return registry->snapshot(); });
    cfg.task_traces = &task_traces;
    cfg.trace_sample_rate = 0.25;
    cfg.slo = &slo;
  }
  // The flight arm prices the whole recorder path: engine events via the
  // explicit config pointer plus pool heartbeats / ratekeeper events via
  // the process-wide default.
  cfg.flight = flight;
  if (flight != nullptr) {
    obs::set_default_flight(flight);
  }
  // The storage arm prices the full durability write path: WAL appends
  // with group-commit fsyncs, periodic checkpoint publication, and the
  // chunked journal mirror of every round record.
  cfg.storage = storage;
  obs::set_default_registry(registry);
  engine::OnlineEngine eng(cfg, scenario.platform, scenario.embedder,
                           predictor, &pool);
  const engine::EngineResult result = eng.run();
  obs::set_default_registry(nullptr);
  if (flight != nullptr) {
    obs::set_default_flight(nullptr);
  }
  return result.wall_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool journal_enabled = false;
  bool ratekeeper_enabled = false;
  bool flight_enabled = false;
  std::string journal_path = "online_engine.jsonl";
  std::string bench_json_path;
  std::string profile_path;
  double trace_sample = 0.0;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[k], "--ratekeeper") == 0) {
      ratekeeper_enabled = true;
    } else if (std::strcmp(argv[k], "--flight") == 0) {
      flight_enabled = true;
    } else if (std::strcmp(argv[k], "--journal") == 0) {
      journal_enabled = true;
      if (k + 1 < argc && argv[k + 1][0] != '-') {
        journal_path = argv[++k];
      }
    } else if (std::strcmp(argv[k], "--bench-json") == 0 && k + 1 < argc) {
      bench_json_path = argv[++k];
    } else if (std::strcmp(argv[k], "--profile") == 0 && k + 1 < argc) {
      profile_path = argv[++k];
    } else if (std::strcmp(argv[k], "--trace-sample") == 0 && k + 1 < argc) {
      trace_sample = std::strtod(argv[++k], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--journal [path]] "
                   "[--trace-sample <rate>] [--ratekeeper] [--flight] "
                   "[--bench-json <path>] [--profile <path>]\n",
                   argv[0]);
      return 2;
    }
  }
  const std::size_t num_clusters = 3;
  const std::size_t max_arrivals = quick ? 120 : 600;
  const std::uint64_t seed = 42;

  std::printf("== Online engine: frozen vs drift-aware retraining "
              "(%zu arrivals) ==\n", max_arrivals);
  Stopwatch total;
  Scenario scenario = make_scenario(num_clusters, 120, seed);

  // Pretrain one TSM predictor on the profiled dataset, then clone it so
  // both modes start from identical weights.
  Rng init(0xbeefULL ^ seed);
  core::PredictorConfig pred_cfg;
  core::PlatformPredictor pretrained(num_clusters, pred_cfg, init);
  core::TsmConfig tsm_cfg;
  tsm_cfg.epochs = 300;
  core::train_tsm(pretrained, scenario.profile_data, tsm_cfg);
  std::printf("pretrained TSM predictor on %zu profiled tasks (%.1fs)\n",
              scenario.profile_data.num_tasks(), total.seconds());

  // Drift the cluster the pretrained predictor likes most for an average
  // task — the one whose degradation hurts a stale predictor hardest.
  std::size_t drift_cluster = 0;
  {
    const Matrix t_hat = pretrained.predict_time_matrix(
        scenario.profile_data.features);
    double best = 0.0;
    for (std::size_t i = 0; i < num_clusters; ++i) {
      double mean = 0.0;
      for (std::size_t j = 0; j < t_hat.cols(); ++j) {
        mean += t_hat(i, j);
      }
      mean /= static_cast<double>(t_hat.cols());
      if (i == 0 || mean < best) {
        best = mean;
        drift_cluster = i;
      }
    }
  }

  // Drift when roughly half the stream has arrived (expected time of the
  // burst-modulated process ~ arrivals / effective rate).
  const double effective_rate = 40.0 * (0.25 * 3.0 + 0.75);
  const double drift_at =
      static_cast<double>(max_arrivals) / 2.0 / effective_rate;
  std::printf("drift: cluster %zu (%s) degrades 4x at t=%.2fh\n",
              drift_cluster,
              scenario.platform.cluster(drift_cluster).name().c_str(),
              drift_at);

  // Black-box recorder for the --flight runs, attached both explicitly
  // (engine events) and as the process default (pool heartbeats,
  // ratekeeper events). Declared before the pool so workers quiesce
  // before the rings go away.
  std::unique_ptr<obs::FlightRecorder> flight_rec;
  if (flight_enabled) {
    flight_rec = std::make_unique<obs::FlightRecorder>();
    obs::set_default_flight(flight_rec.get());
  }
  // In-process sampling profiler: the subject of both the --profile
  // capture and the profiler-overhead measurement below, so it always
  // exists. Declared before the pool (same ordering discipline as the
  // flight recorder) so workers quiesce before the per-thread entries go
  // away. It only becomes the process default — and thus visible to the
  // engine and pool workers — under --profile or inside the overhead
  // arms.
  obs::ProfilerConfig prof_cfg;
  prof_cfg.max_threads = 64;
  obs::SamplingProfiler profiler(prof_cfg);
  if (!profile_path.empty()) {
    obs::set_default_profiler(&profiler);
  }
  ThreadPool pool;
  std::unique_ptr<obs::JsonlWriter> journal;
  // Spans are wall-clock and would break the byte-stable journal diff, so
  // they drain to a sibling file the determinism guard never compares.
  std::unique_ptr<obs::TraceRing> trace_ring;
  std::unique_ptr<obs::JsonlWriter> spans_out;
  if (journal_enabled) {
    journal = std::make_unique<obs::JsonlWriter>(journal_path);
    trace_ring = std::make_unique<obs::TraceRing>(512);
    spans_out = std::make_unique<obs::JsonlWriter>(journal_path + ".spans");
  }
  // Task-lifecycle traces carry sim-time endpoints only, so they share the
  // journal's determinism and drain to their own sibling file.
  std::unique_ptr<obs::TraceStore> task_traces;
  std::unique_ptr<obs::JsonlWriter> tasktraces_out;
  if (trace_sample > 0.0) {
    task_traces = std::make_unique<obs::TraceStore>(4096);
    if (journal_enabled) {
      tasktraces_out =
          std::make_unique<obs::JsonlWriter>(journal_path + ".tasktraces");
    }
  }
  std::vector<std::pair<std::string, bool>> modes = {{"frozen", false},
                                                     {"online", true}};
  Table csv({"mode", "round", "close_hours", "trigger", "batch",
             "queue_depth", "dropped_total", "max_wait_hours", "regret",
             "rolling_regret", "reliability", "utilization", "makespan",
             "drift_stat", "retrained", "retrain_total", "pred_gap",
             "solver_gap", "rounding_gap", "admission_gap"});
  double post_drift_regret[2] = {0.0, 0.0};
  // Per-mode facts the --bench-json summary reports.
  double mode_wall_seconds[2] = {0.0, 0.0};
  std::size_t mode_rounds[2] = {0, 0};
  double mode_pred_gap[2] = {0.0, 0.0};
  double mode_solver_gap[2] = {0.0, 0.0};
  double mode_rounding_gap[2] = {0.0, 0.0};
  std::size_t mode_index = 0;

  for (const auto& [label, online] : modes) {
    Rng clone_init(0x5eedULL);
    core::PlatformPredictor predictor(num_clusters, pred_cfg, clone_init);
    clone_weights(pretrained, predictor);

    engine::EngineConfig run_cfg =
        engine_config(online, drift_at, max_arrivals, drift_cluster);
    run_cfg.attribution = true;
    run_cfg.trace = trace_ring.get();
    run_cfg.task_traces = task_traces.get();
    run_cfg.trace_sample_rate = trace_sample;
    run_cfg.flight = flight_rec.get();
    obs::SloMonitor slo;
    run_cfg.slo = &slo;
    // Fresh controller + bucket per mode so the two arms stay a paired
    // comparison: both start at the same admission rate.
    std::unique_ptr<control::Ratekeeper> ratekeeper;
    std::unique_ptr<control::TokenBucketTable> buckets;
    if (ratekeeper_enabled) {
      control::RatekeeperConfig rk_cfg;
      rk_cfg.initial_rate_per_hour =
          4.0 * static_cast<double>(run_cfg.batcher.max_batch) /
          run_cfg.batcher.max_wait_hours;
      rk_cfg.wait_target_hours = 2.0 * run_cfg.batcher.max_wait_hours;
      ratekeeper = std::make_unique<control::Ratekeeper>(rk_cfg,
                                                         slo.config());
      buckets = std::make_unique<control::TokenBucketTable>();
      run_cfg.ratekeeper = ratekeeper.get();
      run_cfg.admission_buckets = buckets.get();
    }
    engine::OnlineEngine eng(run_cfg, scenario.platform, scenario.embedder,
                             predictor, &pool);
    // --profile samples the online arm: the frozen arm has already walked
    // every thread through registration (pool workers stay registered),
    // and the main thread is re-registered here up front because threads
    // that register mid-session only join the *next* session.
    const bool profiled = !profile_path.empty() && online;
    if (profiled) {
      profiler.register_current_thread("engine");
      profiler.start(97.0);
    }
    Stopwatch watch;
    const engine::EngineResult result = eng.run();
    if (profiled) {
      profiler.stop();
    }

    RunningStats pred_gap;
    RunningStats solver_gap;
    RunningStats rounding_gap;
    for (const auto& r : result.rounds) {
      if (journal != nullptr) {
        engine::append_round_journal(*journal, r, label);
      }
      pred_gap.add(r.attribution.pred_gap);
      solver_gap.add(r.attribution.solver_gap);
      rounding_gap.add(r.attribution.rounding_gap);
      csv.add_row({label, std::to_string(r.round),
                   Table::cell(r.close_hours, 4), to_string(r.trigger),
                   std::to_string(r.batch), std::to_string(r.queue_depth),
                   std::to_string(r.dropped_total),
                   Table::cell(r.max_wait_hours, 4), Table::cell(r.regret, 6),
                   Table::cell(r.rolling_regret, 6),
                   Table::cell(r.reliability, 6),
                   Table::cell(r.utilization, 6), Table::cell(r.makespan, 6),
                   Table::cell(r.drift_stat, 6),
                   r.retrained ? "1" : "0",
                   std::to_string(r.retrain_total),
                   Table::cell(r.attribution.pred_gap, 6),
                   Table::cell(r.attribution.solver_gap, 6),
                   Table::cell(r.attribution.rounding_gap, 6),
                   Table::cell(r.attribution.admission_gap, 6)});
    }
    if (spans_out != nullptr && trace_ring != nullptr) {
      trace_ring->drain_to(*spans_out);
    }
    if (task_traces != nullptr) {
      std::printf("   task traces: %llu begun, %zu resident, %llu evicted\n",
                  static_cast<unsigned long long>(task_traces->begun()),
                  task_traces->size(),
                  static_cast<unsigned long long>(task_traces->evicted()));
      if (tasktraces_out != nullptr) {
        task_traces->drain_to(*tasktraces_out, label);
      }
    }

    // End-of-run SLO state: burn rates over the final windows, one row per
    // rule (the same numbers GET /alerts would serve in gateway mode).
    const double end_hours =
        result.rounds.empty() ? 0.0 : result.rounds.back().close_hours;
    std::printf("   SLO state [%s] at t=%.2fh:\n%s", label.c_str(),
                end_hours,
                obs::slo_summary_table(slo.evaluate(end_hours)).c_str());

    if (ratekeeper != nullptr) {
      const control::RatekeeperStatus rk = ratekeeper->status();
      std::printf("   ratekeeper [%s]: rate %.1f tasks/h, limiting=%s, "
                  "%llu decreases / %llu recoveries, %llu throttled\n",
                  label.c_str(), rk.rate_per_hour,
                  control::to_string(rk.limiting).c_str(),
                  static_cast<unsigned long long>(rk.decreases),
                  static_cast<unsigned long long>(rk.recoveries),
                  static_cast<unsigned long long>(result.throttled));
    }

    mode_wall_seconds[mode_index] = watch.seconds();
    mode_rounds[mode_index] = result.counters.rounds;
    mode_pred_gap[mode_index] = pred_gap.mean();
    mode_solver_gap[mode_index] = solver_gap.mean();
    mode_rounding_gap[mode_index] = rounding_gap.mean();
    post_drift_regret[mode_index++] =
        mean_regret_after(result.rounds, drift_at);
    std::printf(
        "[%s] %zu rounds, %zu arrivals (%zu dispatched, %zu dropped, "
        "%zu expired), %zu retrains, drop rate %.1f%% (%.1fs)\n",
        label.c_str(), result.counters.rounds, result.counters.arrivals,
        result.queue.dispatched, result.queue.dropped_capacity,
        result.queue.expired,
        result.counters.retrains,
        100.0 * static_cast<double>(result.queue.dropped_total()) /
            static_cast<double>(std::max<std::size_t>(
                result.queue.offered, 1)),
        watch.seconds());
    std::printf("   total: %s\n", result.total.summary().c_str());
    std::printf("   attribution: pred %.4f | solver %.4f | rounding %.4f "
                "(mean/round)\n",
                pred_gap.mean(), solver_gap.mean(), rounding_gap.mean());
    std::printf("   post-drift regret: %.4f | pre-drift regret: %.4f\n",
                post_drift_regret[mode_index - 1],
                [&] {
                  RunningStats s;
                  for (const auto& r : result.rounds) {
                    if (r.close_hours <= drift_at) s.add(r.regret);
                  }
                  return s.mean();
                }());
  }

  if (journal != nullptr) {
    journal->flush();
    std::printf("journal written to %s (%zu records)\n",
                journal_path.c_str(), journal->records_written());
  }
  if (spans_out != nullptr) {
    spans_out->flush();
    std::printf("spans written to %s.spans (%zu records)\n",
                journal_path.c_str(), spans_out->records_written());
  }
  if (tasktraces_out != nullptr) {
    tasktraces_out->flush();
    std::printf("task traces written to %s.tasktraces (%zu records)\n",
                journal_path.c_str(), tasktraces_out->records_written());
  }
  if (!profile_path.empty()) {
    // Render before the overhead block below: its active arm runs fresh
    // sessions that would reset the rings and stage totals.
    const std::string folded = profiler.folded();
    FILE* out = std::fopen(profile_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write profile to %s\n",
                   profile_path.c_str());
      return 2;
    }
    std::fwrite(folded.data(), 1, folded.size(), out);
    std::fclose(out);
    std::printf("profile written to %s (%llu samples across %zu threads, "
                "%llu truncated)\n",
                profile_path.c_str(),
                static_cast<unsigned long long>(profiler.samples_total()),
                profiler.threads_registered(),
                static_cast<unsigned long long>(profiler.truncated_total()));
    obs::set_default_profiler(nullptr);
  }
  if (flight_rec != nullptr) {
    // Detach the process default before the overhead measurement below so
    // its "off" arm really runs recorder-free.
    obs::set_default_flight(nullptr);
    std::printf("flight recorder: %llu events (%llu dropped) across %zu "
                "threads\n",
                static_cast<unsigned long long>(flight_rec->events_total()),
                static_cast<unsigned long long>(flight_rec->dropped_total()),
                flight_rec->threads_registered());
  }

  // Telemetry overhead: the same frozen-mode engine with instrumentation
  // fully off vs fully on, interleaved, best-of-N each to shed scheduler
  // noise. The budget is 5% (ISSUE acceptance criterion); disabled
  // instrumentation is a null-pointer check, enabled instrumentation is
  // sharded atomics plus a steady-clock read per stage.
  double telemetry_overhead_pct = 0.0;
  double flight_overhead_pct = 0.0;
  double flight_off_best = 0.0;
  double flight_on_best = 0.0;
  double profiler_idle_overhead_pct = 0.0;
  double profiler_active_overhead_pct = 0.0;
  double storage_overhead_pct = 0.0;
  double storage_off_best = 0.0;
  double storage_on_best = 0.0;
  obs::RegistrySnapshot stage_snapshot;
  {
    const engine::EngineConfig overhead_cfg =
        engine_config(false, drift_at, max_arrivals, drift_cluster);
    obs::MetricsRegistry registry;
    obs::TraceRing trace(256);
    const int reps = quick ? 2 : 3;
    double off_best = 0.0;
    double on_best = 0.0;
    for (int r = 0; r < reps; ++r) {
      const double off = timed_run(scenario, pretrained, overhead_cfg, pool,
                                   nullptr, nullptr);
      registry.reset();  // paired runs: zero values, keep registrations
      const double on = timed_run(scenario, pretrained, overhead_cfg, pool,
                                  &registry, &trace);
      off_best = r == 0 ? off : std::min(off_best, off);
      on_best = r == 0 ? on : std::min(on_best, on);
    }
    telemetry_overhead_pct = 100.0 * (on_best - off_best) / off_best;
    std::printf("telemetry overhead: off %.3fs vs on %.3fs (%+.1f%%, "
                "budget 5%%)%s\n",
                off_best, on_best, telemetry_overhead_pct,
                telemetry_overhead_pct > 5.0 ? " — OVER BUDGET" : "");

    // Stage latency quantiles from the instrumented run's histograms —
    // the same numbers a Prometheus scrape of /metrics would expose as
    // the _quantile gauges.
    stage_snapshot = registry.snapshot();
    for (const auto& h : stage_snapshot.histograms) {
      if (h.name.rfind("mfcp_engine_stage_seconds", 0) != 0 ||
          h.count == 0) {
        continue;
      }
      std::printf("  %-44s p50 %7.3fms  p90 %7.3fms  p99 %7.3fms  "
                  "(n=%llu)\n",
                  h.name.c_str(),
                  1e3 * obs::histogram_quantile(h, 0.5),
                  1e3 * obs::histogram_quantile(h, 0.9),
                  1e3 * obs::histogram_quantile(h, 0.99),
                  static_cast<unsigned long long>(h.count));
    }

    // Flight-recorder overhead: both arms run the fully instrumented
    // engine, one with the black box attached (rings + heartbeats + the
    // process default). The recorder's budget is 2% — recording is a
    // handful of relaxed atomic stores, so it should price well under the
    // telemetry stack itself. One recorder serves every rep (rings
    // overwrite), so no heartbeat slot churn between reps.
    {
      obs::FlightRecorder recorder;
      for (int r = 0; r < reps; ++r) {
        registry.reset();
        const double off = timed_run(scenario, pretrained, overhead_cfg,
                                     pool, &registry, &trace, nullptr);
        registry.reset();
        const double on = timed_run(scenario, pretrained, overhead_cfg,
                                    pool, &registry, &trace, &recorder);
        flight_off_best = r == 0 ? off : std::min(flight_off_best, off);
        flight_on_best = r == 0 ? on : std::min(flight_on_best, on);
      }
      flight_overhead_pct =
          100.0 * (flight_on_best - flight_off_best) / flight_off_best;
      std::printf("flight overhead: off %.3fs vs on %.3fs (%+.1f%%, "
                  "budget 2%%; %llu events recorded)%s\n",
                  flight_off_best, flight_on_best, flight_overhead_pct,
                  static_cast<unsigned long long>(recorder.events_total()),
                  flight_overhead_pct > 2.0 ? " — OVER BUDGET" : "");
    }

    // Sampling-profiler overhead, three interleaved arms over the same
    // instrumented engine: no profiler at all; profiler armed but idle
    // (thread registration + TLS stage markers, no session — the cost of
    // shipping with --profile and never hitting /debug/profile); and a
    // live 97 Hz session for the whole run. Budgets: armed-idle <= 1%,
    // active sampling <= 3%.
    {
      const std::uint64_t samples_before = profiler.samples_total();
      double off_best = 0.0;
      double idle_best = 0.0;
      double active_best = 0.0;
      for (int r = 0; r < reps; ++r) {
        obs::set_default_profiler(nullptr);
        registry.reset();
        const double off = timed_run(scenario, pretrained, overhead_cfg,
                                     pool, &registry, &trace);
        obs::set_default_profiler(&profiler);
        registry.reset();
        const double idle = timed_run(scenario, pretrained, overhead_cfg,
                                      pool, &registry, &trace);
        registry.reset();
        profiler.start(97.0);
        const double active = timed_run(scenario, pretrained, overhead_cfg,
                                        pool, &registry, &trace);
        profiler.stop();
        off_best = r == 0 ? off : std::min(off_best, off);
        idle_best = r == 0 ? idle : std::min(idle_best, idle);
        active_best = r == 0 ? active : std::min(active_best, active);
      }
      obs::set_default_profiler(nullptr);
      profiler_idle_overhead_pct =
          100.0 * (idle_best - off_best) / off_best;
      profiler_active_overhead_pct =
          100.0 * (active_best - off_best) / off_best;
      std::printf("profiler overhead: off %.3fs vs armed-idle %.3fs "
                  "(%+.1f%%, budget 1%%)%s\n",
                  off_best, idle_best, profiler_idle_overhead_pct,
                  profiler_idle_overhead_pct > 1.0 ? " — OVER BUDGET" : "");
      std::printf("profiler overhead: off %.3fs vs sampling@97Hz %.3fs "
                  "(%+.1f%%, budget 3%%; %llu samples)%s\n",
                  off_best, active_best, profiler_active_overhead_pct,
                  static_cast<unsigned long long>(profiler.samples_total() -
                                                  samples_before),
                  profiler_active_overhead_pct > 3.0 ? " — OVER BUDGET"
                                                     : "");
    }

    // Durability overhead: the same instrumented engine with the storage
    // stack off vs fully on — WAL appends (group commit every 32),
    // periodic + final checkpoint publication, and the chunked journal
    // mirror of every round. The budget is 5% (ISSUE acceptance
    // criterion). Each rep writes a fresh scratch dir so no arm pays
    // recovery or disk-state carryover.
    {
      const std::filesystem::path scratch =
          std::filesystem::temp_directory_path() /
          ("mfcp_bench_storage_" + std::to_string(::getpid()));
      std::error_code ec;
      std::filesystem::remove_all(scratch, ec);
      for (int r = 0; r < reps; ++r) {
        registry.reset();
        const double off = timed_run(scenario, pretrained, overhead_cfg,
                                     pool, &registry, &trace);
        registry.reset();
        storage::StorageConfig storage_cfg;
        storage_cfg.dir = (scratch / ("rep" + std::to_string(r))).string();
        storage::StorageManager storage(storage_cfg);
        const double on = timed_run(scenario, pretrained, overhead_cfg,
                                    pool, &registry, &trace, nullptr,
                                    &storage);
        storage_off_best = r == 0 ? off : std::min(storage_off_best, off);
        storage_on_best = r == 0 ? on : std::min(storage_on_best, on);
      }
      std::filesystem::remove_all(scratch, ec);
      storage_overhead_pct =
          100.0 * (storage_on_best - storage_off_best) / storage_off_best;
      std::printf("storage overhead: off %.3fs vs durable %.3fs (%+.1f%%, "
                  "budget 5%%)%s\n",
                  storage_off_best, storage_on_best, storage_overhead_pct,
                  storage_overhead_pct > 5.0 ? " — OVER BUDGET" : "");
    }
  }

  // Machine-readable one-record summary for CI archiving: throughput per
  // mode, stage latency quantiles, mean regret-attribution terms, and the
  // two overhead measurements.
  if (!bench_json_path.empty()) {
    obs::JsonlWriter summary(bench_json_path);
    summary.field("record", std::string_view("bench_summary"))
        .field("bench", std::string_view("exp_online_engine"))
        .field("quick", quick)
        .field("arrivals", static_cast<std::uint64_t>(max_arrivals));
    const char* mode_names[2] = {"frozen", "online"};
    for (std::size_t m = 0; m < 2; ++m) {
      const std::string prefix = mode_names[m];
      summary
          .field(prefix + "_rounds",
                 static_cast<std::uint64_t>(mode_rounds[m]))
          .field(prefix + "_wall_seconds", mode_wall_seconds[m])
          .field(prefix + "_rounds_per_second",
                 mode_wall_seconds[m] > 0.0
                     ? static_cast<double>(mode_rounds[m]) /
                           mode_wall_seconds[m]
                     : 0.0)
          .field(prefix + "_post_drift_regret", post_drift_regret[m])
          .field(prefix + "_pred_gap_mean", mode_pred_gap[m])
          .field(prefix + "_solver_gap_mean", mode_solver_gap[m])
          .field(prefix + "_rounding_gap_mean", mode_rounding_gap[m]);
    }
    for (const auto& h : stage_snapshot.histograms) {
      if (h.name.rfind("mfcp_engine_stage_seconds", 0) != 0 ||
          h.count == 0) {
        continue;
      }
      // h.name carries the label inline: ...{stage="match"}.
      const std::string::size_type at = h.name.find("stage=\"");
      if (at == std::string::npos) {
        continue;
      }
      const std::string::size_type begin = at + 7;
      const std::string::size_type end = h.name.find('"', begin);
      if (end == std::string::npos) {
        continue;
      }
      const std::string stage = h.name.substr(begin, end - begin);
      summary
          .field("stage_" + stage + "_p50_ms",
                 1e3 * obs::histogram_quantile(h, 0.5))
          .field("stage_" + stage + "_p99_ms",
                 1e3 * obs::histogram_quantile(h, 0.99));
    }
    summary.field("telemetry_overhead_pct", telemetry_overhead_pct)
        .field("flight_off_seconds", flight_off_best)
        .field("flight_on_seconds", flight_on_best)
        .field("flight_overhead_pct", flight_overhead_pct)
        .field("profiler_idle_overhead_pct", profiler_idle_overhead_pct)
        .field("profiler_active_overhead_pct", profiler_active_overhead_pct)
        .field("storage_off_seconds", storage_off_best)
        .field("storage_on_seconds", storage_on_best)
        .field("storage_overhead_pct", storage_overhead_pct);
    summary.end_record();
    summary.flush();
    std::printf("bench summary written to %s\n", bench_json_path.c_str());
  }

  std::printf("\npost-drift rolling regret: frozen %.4f vs online %.4f\n",
              post_drift_regret[0], post_drift_regret[1]);
  if (post_drift_regret[1] < post_drift_regret[0]) {
    std::printf("PASS: online retraining beats the frozen predictor after "
                "the drift\n");
  } else {
    std::printf("WARN: online retraining did not beat the frozen predictor\n");
  }

  if (!quick) {
    csv.write_csv("online_engine.csv");
    std::printf("CSV written to online_engine.csv (%.1fs total)\n",
                total.seconds());
  }
  // The frozen-vs-online regret gate judges the un-throttled benchmark.
  // Under --ratekeeper both arms run the same admission-clipped stream and
  // can tie; that run exists to lock admission determinism, not to prove a
  // retraining win, so it succeeds on completing.
  if (ratekeeper_enabled) {
    return 0;
  }
  return post_drift_regret[1] < post_drift_regret[0] ? 0 : 1;
}
